//! Runs benchmarks and prints synthesized programs.
//!
//! Single-benchmark mode (prints the program, handy for inspection) — a
//! registry id or a `.rbspec` file:
//!
//! ```text
//! cargo run --release -p rbsyn-bench --bin solve -- A7 [timeout_secs]
//! cargo run --release -p rbsyn-bench --bin solve -- --spec examples/blog.rbspec
//! ```
//!
//! Batch mode — the whole registry (or `--ids`), or a `.rbspec` corpus
//! directory, through the parallel batch driver. The stdout section is
//! deterministic (no timings), so two runs with different `--parallel`
//! values — or a registry run against a `--spec-dir` run — can be
//! byte-compared; timing goes to stderr:
//!
//! ```text
//! cargo run --release -p rbsyn-bench --bin solve -- --all --parallel 4
//! cargo run --release -p rbsyn-bench --bin solve -- --all --spec-dir benchmarks --parallel 4
//! cargo run --release -p rbsyn-bench --bin solve -- --all --compare --parallel 4
//! ```
//!
//! `--intra N` dispatches each problem's per-spec and guard searches as N
//! concurrent tasks on the shared pool; `--strategy NAME` selects the
//! work-list exploration order (`paper`, `cost`). Both keep the
//! deterministic stdout section byte-identical for a fixed strategy.
//!
//! `--compare` runs a fully sequential baseline first (one thread, intra
//! 1, same strategy and cache setting), then the requested
//! `--parallel`/`--intra` configuration, verifies the two deterministic
//! sections are byte-identical, and reports both wall-clocks. Exits
//! nonzero on mismatch or on any unsolved benchmark.
//!
//! `--snapshot FILE` (batch mode) loads a warm template-memo snapshot
//! before the run and saves the (possibly extended) memo back after it —
//! crash-safely, via temp-file + atomic rename. A missing, truncated or
//! corrupted snapshot degrades to a cold cache with a stderr warning and
//! never changes the synthesized programs; warm-vs-cold shows up only in
//! the diagnostic `template_hits`/`template_misses` counters (warm runs
//! report zero misses).
//!
//! `--global-deadline SECS` (batch mode) arms admission control: once the
//! queue cannot plausibly finish within the remaining global budget
//! (median solve time × remaining waves), the tail of the queue is *shed*
//! (exit code 6) instead of dragging every job into a timeout.
//! `--global-deadline 0` sheds everything — useful for exercising the
//! shed path deterministically.
//!
//! `--trace FILE` (single-benchmark and `--spec` modes only; the env
//! fallback `RBSYN_TRACE=FILE` is ignored in batch mode) records a
//! search-event trace and writes it as Chrome trace-event JSON — load it
//! in Perfetto or `chrome://tracing`. `--trace-sample N` thins the
//! per-candidate instants to every `N`-th occurrence (default 64; phase
//! spans and counters are never sampled away). A compact self/total-time
//! profile goes to stderr, so stdout stays byte-comparable: tracing never
//! changes the synthesized program or the effort counters, and the CI
//! `trace` leg diffs the two.
//!
//! ## Exit codes
//!
//! `0` solved · `1` other failure (including panics contained by the
//! supervisor) · `2` usage · `3` `.rbspec` parse/lower error · `4` timeout
//! (including watchdog kills) · `5` search exhausted with no solution ·
//! `6` shed by admission control. Batch runs exit with the dominant
//! failing class (timeout > no-solution > shed > other); the same codes
//! appear as `"exit_code"` in `--json` output.

use rbsyn_bench::harness::{
    batch_stats_json, exit_codes, format_batch_solutions, format_batch_stats,
    format_contention_report, json_escape, run_suite_with, Config,
};
use rbsyn_core::snapshot::{load_snapshot_contained, save_snapshot};
use rbsyn_core::{
    BatchPolicy, BatchReport, Options, SearchCache, StrategyKind, SynthError, SynthesisProblem,
    Synthesizer,
};
use rbsyn_interp::InterpEnv;
use rbsyn_lang::persist::atomic_write;
use rbsyn_suite::{benchmark, benchmarks_from_dir, Benchmark};
use rbsyn_trace::{schema, Session, TraceConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

struct Cli {
    all: bool,
    compare: bool,
    parallel: usize,
    /// `--ids`, when given (overrides `RBSYN_BENCH_IDS`).
    ids: Option<Vec<String>>,
    /// `--timeout` / positional seconds, when given (overrides
    /// `RBSYN_TIMEOUT_SECS`).
    timeout: Option<Duration>,
    /// `--no-cache`: disable the memoized search (A/B escape hatch; the
    /// deterministic output section must be byte-identical either way).
    no_cache: bool,
    /// `--no-obs-equiv`: disable observational-equivalence pruning (A/B
    /// escape hatch; programs must be byte-identical either way, while the
    /// effort counters legitimately shrink with pruning on).
    no_obs_equiv: bool,
    /// `--no-bdd`: disable the BDD-backed guard semantics (A/B escape
    /// hatch; programs *and* effort counters must be byte-identical either
    /// way — only `guard_dedup`/`bdd_nodes` drop to zero and the guard
    /// phase slows down).
    no_bdd: bool,
    /// `--intra`, when given (overrides `RBSYN_INTRA`).
    intra: Option<usize>,
    /// `--strategy`, when given (overrides `RBSYN_STRATEGY`).
    strategy: Option<StrategyKind>,
    /// `--spec FILE`: synthesize one problem from a `.rbspec` file.
    spec: Option<String>,
    /// `--spec-dir DIR`: with `--all`, run the file-driven corpus instead
    /// of the Rust registry.
    spec_dir: Option<String>,
    /// `--trace FILE` (or `RBSYN_TRACE=FILE`): record a search-event trace
    /// and write Chrome trace-event JSON here. Single-benchmark modes only.
    trace: Option<String>,
    /// `--trace-sample N`: record every N-th per-candidate instant
    /// (default 64).
    trace_sample: Option<u64>,
    /// `--snapshot FILE` (batch mode): load a warm template-memo snapshot
    /// before the run, save the extended memo back after it. Corruption
    /// degrades to a cold cache with a warning.
    snapshot: Option<String>,
    /// `--global-deadline SECS` (batch mode): admission-control budget for
    /// the whole batch; jobs that cannot fit are shed (exit code 6).
    global_deadline: Option<Duration>,
    json: Option<String>,
    single: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: solve <ID> [timeout_secs] [--intra N] [--strategy paper|cost] \
         [--trace FILE [--trace-sample N]]\n       \
         solve --spec FILE.rbspec [--timeout SECS] [--intra N] [--strategy paper|cost] \
         [--trace FILE [--trace-sample N]] [--json PATH]\n       \
         solve --all [--spec-dir DIR] [--parallel N] [--intra N] [--strategy paper|cost] \
         [--ids S1,S2,..] [--timeout SECS] [--compare] [--no-cache] [--no-obs-equiv] \
         [--no-bdd] [--snapshot FILE] [--global-deadline SECS] [--json PATH]"
    );
    std::process::exit(exit_codes::USAGE);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        all: false,
        compare: false,
        parallel: 0,
        ids: None,
        timeout: None,
        no_cache: false,
        no_obs_equiv: false,
        no_bdd: false,
        intra: None,
        strategy: None,
        spec: None,
        spec_dir: None,
        trace: None,
        trace_sample: None,
        snapshot: None,
        global_deadline: None,
        json: None,
        single: None,
    };
    let mut batch_only: Vec<&'static str> = Vec::new();
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--all" => cli.all = true,
            "--compare" => {
                cli.compare = true;
                batch_only.push("--compare");
            }
            "--parallel" => {
                cli.parallel = value("--parallel").parse().unwrap_or_else(|_| usage());
                batch_only.push("--parallel");
            }
            "--ids" => {
                // Same tolerant parsing as RBSYN_BENCH_IDS in
                // Config::from_env: trim and drop empty segments.
                cli.ids = Some(
                    value("--ids")
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
                batch_only.push("--ids");
            }
            "--timeout" => {
                cli.timeout = Some(Duration::from_secs(
                    value("--timeout").parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--no-cache" => cli.no_cache = true,
            "--no-obs-equiv" => cli.no_obs_equiv = true,
            "--no-bdd" => cli.no_bdd = true,
            "--intra" => cli.intra = Some(value("--intra").parse().unwrap_or_else(|_| usage())),
            "--strategy" => {
                let name = value("--strategy");
                cli.strategy = Some(StrategyKind::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown strategy {name:?} (try paper, cost)");
                    usage()
                }))
            }
            "--spec" => cli.spec = Some(value("--spec")),
            "--trace" => cli.trace = Some(value("--trace")),
            "--trace-sample" => {
                let n: u64 = value("--trace-sample").parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    eprintln!("--trace-sample must be >= 1");
                    usage();
                }
                cli.trace_sample = Some(n);
            }
            "--spec-dir" => {
                cli.spec_dir = Some(value("--spec-dir"));
                batch_only.push("--spec-dir");
            }
            "--snapshot" => {
                cli.snapshot = Some(value("--snapshot"));
                batch_only.push("--snapshot");
            }
            "--global-deadline" => {
                cli.global_deadline = Some(Duration::from_secs(
                    value("--global-deadline")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                ));
                batch_only.push("--global-deadline");
            }
            "--json" => cli.json = Some(value("--json")),
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => usage(),
            _ => positional.push(a),
        }
    }
    // Env fallback: RBSYN_TRACE names the output file. An explicit flag
    // wins; batch mode ignores the env (a trace records *one* run).
    if cli.trace.is_none() && !cli.all {
        match std::env::var("RBSYN_TRACE") {
            Ok(path) if !path.is_empty() => cli.trace = Some(path),
            _ => {}
        }
    }
    if cli.all && cli.trace.is_some() {
        eprintln!("--trace records one synthesis run; use it with <ID> or --spec, not --all");
        usage();
    }
    if cli.trace_sample.is_some() && cli.trace.is_none() {
        eprintln!("--trace-sample needs --trace (or RBSYN_TRACE)");
        usage();
    }
    if cli.compare && (cli.snapshot.is_some() || cli.global_deadline.is_some()) {
        // A warm cache carried from the baseline into the parallel run, or
        // wall-clock load shedding, would make the two deterministic
        // sections legitimately diverge — the byte-compare would be
        // meaningless.
        eprintln!("--snapshot/--global-deadline do not combine with --compare");
        usage();
    }
    if cli.spec.is_some() && (cli.all || !positional.is_empty() || !batch_only.is_empty()) {
        eprintln!("--spec runs exactly one file; it combines only with --timeout/--intra/--strategy/--json");
        usage();
    }
    if cli.all {
        if !positional.is_empty() {
            eprintln!(
                "--all takes no positional benchmark ids (use --ids {})",
                positional.join(",")
            );
            usage();
        }
    } else if cli.spec.is_none() {
        // A batch flag without --all must not degrade to a single default
        // benchmark that exits 0 — this binary gates CI.
        if !batch_only.is_empty() {
            eprintln!("{} require(s) --all", batch_only.join(", "));
            usage();
        }
        cli.single = Some(
            positional
                .first()
                .cloned()
                .unwrap_or_else(|| "S1".to_owned()),
        );
        if let Some(t) = positional.get(1) {
            match t.parse() {
                Ok(secs) => cli.timeout = Some(Duration::from_secs(secs)),
                Err(_) => {
                    eprintln!("timeout_secs must be an integer, got {t:?}");
                    usage();
                }
            }
        }
    }
    cli
}

/// Drains the tracing session and writes Chrome trace-event JSON to
/// `path`, self-validating through the in-crate schema checker first (a
/// malformed export is a bug, not a user error). The compact self/total
/// profile goes to stderr so the stdout section stays byte-comparable
/// with an untraced run.
fn export_trace(session: Session, path: &str, label: &str, status: &str) {
    let trace = session.finish();
    let json = trace.to_chrome_json(&[("benchmark", label), ("status", status)]);
    let summary = match schema::check_chrome_trace(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("internal error: emitted trace fails self-validation: {e}");
            std::process::exit(exit_codes::OTHER);
        }
    };
    if let Err(e) = atomic_write(Path::new(path), json.as_bytes()) {
        eprintln!("cannot write --trace file {path}: {e}");
        std::process::exit(exit_codes::OTHER);
    }
    eprint!("{}", trace.profile().render());
    eprintln!(
        "trace: {} events on {} thread(s) ({} dropped) -> {path}",
        summary.events, summary.threads, trace.dropped
    );
}

/// Synthesizes one problem, prints the outcome (and `--json` if asked),
/// and exits with the class-specific code. CLI flags override `base` only
/// when actually given — a `.rbspec` file's `options do … end` (strategy,
/// intra, cache, timeout) is honoured otherwise. `default_timeout` backs
/// the registry path's historical 60 s default; `None` leaves the base
/// deadline alone (including a file's explicit `timeout_secs: 0` =
/// unlimited).
fn run_one(
    label: &str,
    display: &str,
    env: InterpEnv,
    problem: SynthesisProblem,
    base: Options,
    cli: &Cli,
    default_timeout: Option<Duration>,
) -> ! {
    let mut opts = base;
    match (cli.timeout, default_timeout) {
        (Some(t), _) => opts.timeout = Some(t),
        (None, Some(d)) => opts.timeout = Some(d),
        (None, None) => {}
    }
    if cli.no_cache {
        opts.cache = false;
    }
    if cli.no_obs_equiv {
        opts.obs_equiv = false;
    }
    if cli.no_bdd {
        opts.bdd = false;
    }
    if let Some(intra) = cli.intra {
        opts.intra_parallelism = intra;
    }
    if let Some(strategy) = cli.strategy {
        opts.strategy = strategy;
    }
    let trace_cfg = cli
        .trace
        .as_ref()
        .map(|_| TraceConfig::with_sample(cli.trace_sample.unwrap_or(64)));
    let tracer = trace_cfg.clone().map(Session::new);
    opts.trace = trace_cfg;
    let mut synth = Synthesizer::new(env, problem, opts);
    if let Some(t) = &tracer {
        synth = synth.with_tracer(t.clone());
    }
    // Supervision boundary: a panic anywhere inside the search must
    // surface as a reportable `Internal` failure (exit code 1) with the
    // trace still exported — not a process abort.
    let result = catch_unwind(AssertUnwindSafe(|| synth.run()))
        .unwrap_or_else(|panic| Err(SynthError::from_panic(&*panic)));
    if let (Some(t), Some(path)) = (tracer, cli.trace.as_deref()) {
        let status = match &result {
            Ok(_) => "solved",
            Err(e) => {
                if exit_codes::for_error(e) == exit_codes::TIMEOUT {
                    "timeout"
                } else {
                    "failed"
                }
            }
        };
        export_trace(t, path, label, status);
    }
    match result {
        Ok(r) => {
            println!(
                "{label} ({display}) solved in {:?} — {} candidates tested ({} obs-pruned), \
                 size {}, paths {}",
                r.stats.elapsed,
                r.stats.search.tested,
                r.stats.search.obs_pruned,
                r.stats.solution_size,
                r.stats.solution_paths
            );
            println!(
                "phases: generate {:.2}s | guard {:.2}s | merge {:.2}s | eval {:.2}s",
                r.stats.generate_time.as_secs_f64(),
                r.stats.guard_time.as_secs_f64(),
                r.stats.merge_time.as_secs_f64(),
                r.stats.search.eval_nanos as f64 / 1e9,
            );
            println!("{}", r.program);
            if let Some(path) = &cli.json {
                let json = format!(
                    "{{\"id\": \"{}\", \"status\": \"solved\", \"exit_code\": 0, \
                     \"elapsed_secs\": {:.6}, \"generate_secs\": {:.6}, \
                     \"guard_secs\": {:.6}, \"merge_secs\": {:.6}, \"eval_secs\": {:.6}, \
                     \"size\": {}, \"paths\": {}, \"tested\": {}, \"obs_pruned\": {}, \
                     \"vector_hits\": {}, \"guard_dedup\": {}, \"bdd_nodes\": {}}}\n",
                    json_escape(label),
                    r.stats.elapsed.as_secs_f64(),
                    r.stats.generate_time.as_secs_f64(),
                    r.stats.guard_time.as_secs_f64(),
                    r.stats.merge_time.as_secs_f64(),
                    r.stats.search.eval_nanos as f64 / 1e9,
                    r.stats.solution_size,
                    r.stats.solution_paths,
                    r.stats.search.tested,
                    r.stats.search.obs_pruned,
                    r.stats.search.vector_hits,
                    r.stats.search.guard_dedup,
                    r.stats.search.bdd_nodes,
                );
                atomic_write(Path::new(path), json.as_bytes()).expect("write --json file");
            }
            std::process::exit(exit_codes::OK);
        }
        Err(e) => {
            let code = exit_codes::for_error(&e);
            println!("{label} failed: {e}");
            if let Some(path) = &cli.json {
                let status = if code == exit_codes::TIMEOUT {
                    "timeout"
                } else if code == exit_codes::NO_SOLUTION {
                    "no_solution"
                } else {
                    "failed"
                };
                let json = format!(
                    "{{\"id\": \"{}\", \"status\": \"{status}\", \"exit_code\": {code}, \
                     \"error\": \"{}\"}}\n",
                    json_escape(label),
                    json_escape(&e.to_string()),
                );
                atomic_write(Path::new(path), json.as_bytes()).expect("write --json file");
            }
            std::process::exit(code);
        }
    }
}

fn run_single(id: &str, cli: &Cli) -> ! {
    let Some(b) = benchmark(id) else {
        eprintln!("unknown benchmark {id:?} (try S1..S7, A1..A12, or --spec FILE)");
        std::process::exit(exit_codes::USAGE);
    };
    let (env, problem) = (b.build)();
    run_one(
        &b.id,
        &b.name,
        env,
        problem,
        (b.options)(),
        cli,
        Some(Duration::from_secs(60)),
    );
}

fn run_spec_file(path: &str, cli: &Cli) -> ! {
    let spec = match rbsyn_front::load_file(Path::new(path)) {
        Ok(s) => s,
        Err(rendered) => {
            eprint!("{rendered}");
            std::process::exit(exit_codes::PARSE);
        }
    };
    let b = Benchmark::from_spec(spec);
    let (env, problem) = (b.build)();
    let name = b.name.clone();
    run_one(&b.id, &name, env, problem, (b.options)(), cli, None);
}

/// The batch benchmark set: the Rust registry, or — with `--spec-dir` —
/// the file-driven corpus. Exits with `PARSE` when a corpus file fails.
fn batch_benchmarks(cli: &Cli, cfg: &Config) -> Vec<Benchmark> {
    let mut benchmarks = match &cli.spec_dir {
        Some(dir) => match benchmarks_from_dir(Path::new(dir)) {
            Ok(v) => v,
            Err(rendered) => {
                eprint!("{rendered}");
                std::process::exit(exit_codes::PARSE);
            }
        },
        None => rbsyn_suite::all_benchmarks(),
    };
    // A typo'd id list (flag or env) must not shrink to a silently-passing
    // empty or partial batch — this binary gates CI.
    let known: Vec<String> = benchmarks.iter().map(|b| b.id.clone()).collect();
    let unknown: Vec<&str> = cfg
        .ids
        .iter()
        .map(String::as_str)
        .filter(|i| !known.iter().any(|k| k == i))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "unknown benchmark id(s) {unknown:?} (known: {})",
            known.join(",")
        );
        std::process::exit(exit_codes::USAGE);
    }
    if !cfg.ids.is_empty() {
        benchmarks.retain(|b| cfg.ids.contains(&b.id));
    }
    benchmarks
}

fn main() {
    let cli = parse_cli();
    if let Some(path) = cli.spec.clone() {
        run_spec_file(&path, &cli);
    }
    if let Some(id) = cli.single.clone() {
        run_single(&id, &cli);
    }

    // Flags override the harness env knobs (RBSYN_BENCH_IDS /
    // RBSYN_TIMEOUT_SECS / RBSYN_NO_CACHE); unset flags inherit them.
    let mut cfg = Config::from_env();
    if let Some(ids) = cli.ids.clone() {
        cfg.ids = ids;
    }
    if let Some(t) = cli.timeout {
        cfg.timeout = t;
    }
    if cli.no_cache {
        cfg.cache = false;
    }
    if cli.no_obs_equiv {
        cfg.obs_equiv = false;
    }
    if cli.no_bdd {
        cfg.bdd = false;
    }
    if let Some(intra) = cli.intra {
        cfg.intra = intra;
    }
    if let Some(strategy) = cli.strategy {
        cfg.strategy = strategy;
    }

    let benchmarks = batch_benchmarks(&cli, &cfg);
    // Batch-shared template cache, warmed from `--snapshot` when one is
    // given and loadable. Any corruption (bad checksum, truncation, bad
    // version…) degrades to a cold cache with a warning — it must never
    // abort the run or change the synthesized programs.
    let snapshot_cache = cli.snapshot.as_ref().map(|path| {
        let cache = Arc::new(SearchCache::new());
        match load_snapshot_contained(Path::new(path), &cache) {
            Ok(n) => eprintln!("snapshot: warmed {n} template entries from {path}"),
            Err(e) => eprintln!("snapshot: cannot load {path} ({e}); starting cold"),
        }
        cache
    });
    let policy = BatchPolicy {
        global_deadline: cli.global_deadline,
        cache: snapshot_cache.clone(),
    };
    let run = |cfg: &Config, threads: usize| -> BatchReport {
        run_suite_with(benchmarks.clone(), cfg, threads, &policy)
    };
    if cli.compare {
        // Baseline: one thread, no intra tasks — the reference pipeline.
        // Same strategy (which legitimately shapes the result) and same
        // cache setting (which must not — the determinism CI leg diffs
        // cache on/off separately); thread counts and task widths must
        // never change the deterministic section.
        let baseline_cfg = Config {
            intra: 1,
            ..cfg.clone()
        };
        eprintln!("compare: sequential baseline…");
        let seq = run(&baseline_cfg, 1);
        eprintln!(
            "compare: parallel run ({} threads, intra {})…",
            cli.parallel, cfg.intra
        );
        let par = run(&cfg, cli.parallel);
        let (a, b) = (format_batch_solutions(&seq), format_batch_solutions(&par));
        eprint!("sequential {}", format_batch_stats(&seq));
        eprint!("parallel   {}", format_batch_stats(&par));
        if a != b {
            eprintln!("MISMATCH between sequential baseline and parallel results:");
            eprintln!("--- sequential ---\n{a}--- parallel ---\n{b}");
            std::process::exit(exit_codes::OTHER);
        }
        let wall_speedup =
            seq.stats.wall_clock.as_secs_f64() / par.stats.wall_clock.as_secs_f64().max(1e-9);
        eprintln!(
            "results byte-identical across thread counts/intra widths; \
             wall-clock speedup {wall_speedup:.2}x, in-batch estimate {:.2}x",
            par.stats.speedup()
        );
        print!("{a}");
        if let Some(path) = &cli.json {
            atomic_write(Path::new(path), batch_stats_json(&par).as_bytes())
                .expect("write --json file");
        }
        std::process::exit(exit_codes::for_batch(&seq));
    }

    let report = run(&cfg, cli.parallel);
    print!("{}", format_batch_solutions(&report));
    eprint!("{}", format_batch_stats(&report));
    // Per-lock wait/hold lines (stderr, like the stats — the stdout
    // solution section stays byte-comparable); instrumented builds only.
    if rbsyn_lang::contention::enabled() {
        eprint!(
            "{}",
            format_contention_report(&rbsyn_lang::contention::snapshot())
        );
    }
    if let (Some(path), Some(cache)) = (&cli.snapshot, &snapshot_cache) {
        // Persist the (possibly extended) template memo for the next run —
        // atomically, so a crash mid-save leaves the previous snapshot
        // intact rather than a truncated file.
        match save_snapshot(cache, Path::new(path)) {
            Ok(()) => {
                let (hits, misses) = cache.template_counters();
                eprintln!("snapshot: saved template memo to {path} (hits {hits}, misses {misses})");
            }
            Err(e) => eprintln!("snapshot: cannot save {path}: {e}"),
        }
    }
    if let Some(path) = &cli.json {
        atomic_write(Path::new(path), batch_stats_json(&report).as_bytes())
            .expect("write --json file");
    }
    std::process::exit(exit_codes::for_batch(&report));
}
