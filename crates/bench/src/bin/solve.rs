//! Runs benchmarks and prints synthesized programs.
//!
//! Single-benchmark mode (prints the program, handy for inspection):
//!
//! ```text
//! cargo run --release -p rbsyn-bench --bin solve -- A7 [timeout_secs]
//! ```
//!
//! Batch mode — the whole registry (or `--ids`) through the parallel batch
//! driver. The stdout section is deterministic (no timings), so two runs
//! with different `--parallel` values can be byte-compared; timing goes to
//! stderr:
//!
//! ```text
//! cargo run --release -p rbsyn-bench --bin solve -- --all --parallel 4
//! cargo run --release -p rbsyn-bench --bin solve -- --all --compare --parallel 4
//! ```
//!
//! `--intra N` dispatches each problem's per-spec and guard searches as N
//! concurrent tasks on the shared pool; `--strategy NAME` selects the
//! work-list exploration order (`paper`, `cost`). Both keep the
//! deterministic stdout section byte-identical for a fixed strategy.
//!
//! `--compare` runs a fully sequential baseline first (one thread, intra
//! 1, same strategy and cache setting), then the requested
//! `--parallel`/`--intra` configuration, verifies the two deterministic
//! sections are byte-identical, and reports both wall-clocks. Exits
//! nonzero on mismatch or on any unsolved benchmark.

use rbsyn_bench::harness::{
    batch_stats_json, format_batch_solutions, format_batch_stats, run_suite, Config,
};
use rbsyn_core::{Options, StrategyKind, Synthesizer};
use rbsyn_suite::benchmark;
use std::time::Duration;

struct Cli {
    all: bool,
    compare: bool,
    parallel: usize,
    /// `--ids`, when given (overrides `RBSYN_BENCH_IDS`).
    ids: Option<Vec<String>>,
    /// `--timeout` / positional seconds, when given (overrides
    /// `RBSYN_TIMEOUT_SECS`).
    timeout: Option<Duration>,
    /// `--no-cache`: disable the memoized search (A/B escape hatch; the
    /// deterministic output section must be byte-identical either way).
    no_cache: bool,
    /// `--intra`, when given (overrides `RBSYN_INTRA`).
    intra: Option<usize>,
    /// `--strategy`, when given (overrides `RBSYN_STRATEGY`).
    strategy: Option<StrategyKind>,
    json: Option<String>,
    single: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: solve <ID> [timeout_secs] [--intra N] [--strategy paper|cost]\n       \
         solve --all [--parallel N] [--intra N] [--strategy paper|cost] \
         [--ids S1,S2,..] [--timeout SECS] [--compare] [--no-cache] [--json PATH]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        all: false,
        compare: false,
        parallel: 0,
        ids: None,
        timeout: None,
        no_cache: false,
        intra: None,
        strategy: None,
        json: None,
        single: None,
    };
    let mut batch_only: Vec<&'static str> = Vec::new();
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--all" => cli.all = true,
            "--compare" => {
                cli.compare = true;
                batch_only.push("--compare");
            }
            "--parallel" => {
                cli.parallel = value("--parallel").parse().unwrap_or_else(|_| usage());
                batch_only.push("--parallel");
            }
            "--ids" => {
                // Same tolerant parsing as RBSYN_BENCH_IDS in
                // Config::from_env: trim and drop empty segments.
                cli.ids = Some(
                    value("--ids")
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
                batch_only.push("--ids");
            }
            "--timeout" => {
                cli.timeout = Some(Duration::from_secs(
                    value("--timeout").parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--no-cache" => cli.no_cache = true,
            "--intra" => cli.intra = Some(value("--intra").parse().unwrap_or_else(|_| usage())),
            "--strategy" => {
                let name = value("--strategy");
                cli.strategy = Some(StrategyKind::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown strategy {name:?} (try paper, cost)");
                    usage()
                }))
            }
            "--json" => {
                cli.json = Some(value("--json"));
                batch_only.push("--json");
            }
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => usage(),
            _ => positional.push(a),
        }
    }
    if cli.all {
        if !positional.is_empty() {
            eprintln!(
                "--all takes no positional benchmark ids (use --ids {})",
                positional.join(",")
            );
            usage();
        }
    } else {
        // A batch flag without --all must not degrade to a single default
        // benchmark that exits 0 — this binary gates CI.
        if !batch_only.is_empty() {
            eprintln!("{} require(s) --all", batch_only.join(", "));
            usage();
        }
        cli.single = Some(
            positional
                .first()
                .cloned()
                .unwrap_or_else(|| "S1".to_owned()),
        );
        if let Some(t) = positional.get(1) {
            match t.parse() {
                Ok(secs) => cli.timeout = Some(Duration::from_secs(secs)),
                Err(_) => {
                    eprintln!("timeout_secs must be an integer, got {t:?}");
                    usage();
                }
            }
        }
    }
    cli
}

fn run_single(id: &str, timeout: Duration, cache: bool, intra: usize, strategy: StrategyKind) -> ! {
    let Some(b) = benchmark(id) else {
        eprintln!("unknown benchmark {id:?} (try S1..S7, A1..A12)");
        std::process::exit(2);
    };
    let (env, problem) = (b.build)();
    let opts = Options {
        timeout: Some(timeout),
        cache,
        intra_parallelism: intra,
        strategy,
        ..(b.options)()
    };
    match Synthesizer::new(env, problem, opts).run() {
        Ok(r) => {
            println!(
                "{} ({}) solved in {:?} — {} candidates tested, size {}, paths {}",
                b.id,
                b.name,
                r.stats.elapsed,
                r.stats.search.tested,
                r.stats.solution_size,
                r.stats.solution_paths
            );
            println!("{}", r.program);
            std::process::exit(0);
        }
        Err(e) => {
            println!("{} failed: {e}", b.id);
            std::process::exit(1);
        }
    }
}

fn main() {
    let cli = parse_cli();
    if let Some(id) = &cli.single {
        run_single(
            id,
            cli.timeout.unwrap_or(Duration::from_secs(60)),
            !cli.no_cache,
            cli.intra.unwrap_or(1),
            cli.strategy.unwrap_or_default(),
        );
    }

    // Flags override the harness env knobs (RBSYN_BENCH_IDS /
    // RBSYN_TIMEOUT_SECS / RBSYN_NO_CACHE); unset flags inherit them.
    let mut cfg = Config::from_env();
    if let Some(ids) = cli.ids.clone() {
        cfg.ids = ids;
    }
    if let Some(t) = cli.timeout {
        cfg.timeout = t;
    }
    if cli.no_cache {
        cfg.cache = false;
    }
    if let Some(intra) = cli.intra {
        cfg.intra = intra;
    }
    if let Some(strategy) = cli.strategy {
        cfg.strategy = strategy;
    }

    // A typo'd id list (flag or env) must not shrink to a silently-passing
    // empty or partial batch — this binary gates CI.
    let known: Vec<&'static str> = rbsyn_suite::all_benchmarks().iter().map(|b| b.id).collect();
    let unknown: Vec<&str> = cfg
        .ids
        .iter()
        .map(String::as_str)
        .filter(|i| !known.contains(i))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "unknown benchmark id(s) {unknown:?} (known: {})",
            known.join(",")
        );
        std::process::exit(2);
    }
    if cli.compare {
        // Baseline: one thread, no intra tasks — the reference pipeline.
        // Same strategy (which legitimately shapes the result) and same
        // cache setting (which must not — the determinism CI leg diffs
        // cache on/off separately); thread counts and task widths must
        // never change the deterministic section.
        let baseline_cfg = Config {
            intra: 1,
            ..cfg.clone()
        };
        eprintln!("compare: sequential baseline…");
        let seq = run_suite(&baseline_cfg, 1);
        eprintln!(
            "compare: parallel run ({} threads, intra {})…",
            cli.parallel, cfg.intra
        );
        let par = run_suite(&cfg, cli.parallel);
        let (a, b) = (format_batch_solutions(&seq), format_batch_solutions(&par));
        eprint!("sequential {}", format_batch_stats(&seq));
        eprint!("parallel   {}", format_batch_stats(&par));
        if a != b {
            eprintln!("MISMATCH between sequential baseline and parallel results:");
            eprintln!("--- sequential ---\n{a}--- parallel ---\n{b}");
            std::process::exit(1);
        }
        let wall_speedup =
            seq.stats.wall_clock.as_secs_f64() / par.stats.wall_clock.as_secs_f64().max(1e-9);
        eprintln!(
            "results byte-identical across thread counts/intra widths; \
             wall-clock speedup {wall_speedup:.2}x, in-batch estimate {:.2}x",
            par.stats.speedup()
        );
        print!("{a}");
        if let Some(path) = &cli.json {
            std::fs::write(path, batch_stats_json(&par)).expect("write --json file");
        }
        std::process::exit(if seq.stats.solved == seq.stats.jobs {
            0
        } else {
            1
        });
    }

    let report = run_suite(&cfg, cli.parallel);
    print!("{}", format_batch_solutions(&report));
    eprint!("{}", format_batch_stats(&report));
    if let Some(path) = &cli.json {
        std::fs::write(path, batch_stats_json(&report)).expect("write --json file");
    }
    std::process::exit(if report.stats.solved == report.stats.jobs {
        0
    } else {
        1
    });
}
