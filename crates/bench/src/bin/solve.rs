//! Runs a single benchmark under full guidance and prints the synthesized
//! program — handy for inspecting solutions.
//!
//! ```text
//! cargo run --release -p rbsyn-bench --bin solve -- A7 [timeout_secs]
//! ```

use rbsyn_core::{Options, Synthesizer};
use rbsyn_suite::benchmark;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let id = args.next().unwrap_or_else(|| "S1".to_owned());
    let timeout = args
        .next()
        .and_then(|s| s.parse().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(60));
    let Some(b) = benchmark(&id) else {
        eprintln!("unknown benchmark {id:?} (try S1..S7, A1..A12)");
        std::process::exit(2);
    };
    let (env, problem) = (b.build)();
    let opts = Options { timeout: Some(timeout), ..(b.options)() };
    match Synthesizer::new(env, problem, opts).run() {
        Ok(r) => {
            println!(
                "{} ({}) solved in {:?} — {} candidates tested, size {}, paths {}",
                b.id, b.name, r.stats.elapsed, r.stats.search.tested,
                r.stats.solution_size, r.stats.solution_paths
            );
            println!("{}", r.program);
        }
        Err(e) => {
            println!("{} failed: {e}", b.id);
            std::process::exit(1);
        }
    }
}
