//! Regenerates Table 1 of the paper.
//!
//! Full (paper-faithful, sequential) mode:
//!
//! ```text
//! RBSYN_RUNS=11 RBSYN_TIMEOUT_SECS=300 cargo run --release -p rbsyn-bench --bin table1
//! ```
//!
//! CI smoke mode — a small fixed subset of the registry through the
//! parallel batch driver with a tight per-problem deadline, with machine-
//! readable stats for the pipeline artifact. Exits nonzero if any smoke
//! benchmark fails to synthesize (so synthesis regressions fail CI):
//!
//! ```text
//! cargo run --release -p rbsyn-bench --bin table1 -- --smoke [--parallel N] [--json PATH]
//! ```

use rbsyn_bench::harness::{
    batch_stats_json, format_batch_solutions, format_batch_stats, format_table1, run_suite,
    table1_rows, Config,
};
use std::time::Duration;

/// The smoke subset: benchmarks that solve well under the smoke deadline in
/// release builds, spanning all three search features (constant/var
/// solutions, effect-guided writes, branch merging).
const SMOKE_IDS: &[&str] = &["S1", "S2", "S3", "S4", "A7"];
const SMOKE_TIMEOUT: Duration = Duration::from_secs(20);

fn main() {
    let mut smoke = false;
    let mut parallel: usize = 0;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--parallel" => {
                parallel = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--parallel needs a number"))
            }
            "--json" => json = Some(args.next().unwrap_or_else(|| die("--json needs a path"))),
            _ => die(&format!(
                "unknown argument {a:?} (try --smoke, --parallel N, --json PATH)"
            )),
        }
    }
    // Full Table 1 timing is deliberately sequential (parallel runs would
    // contend for cores and distort the medians); don't accept a flag we
    // would silently ignore.
    if parallel != 0 && !smoke {
        die("--parallel is only meaningful with --smoke (full Table 1 timing runs sequentially)");
    }

    if smoke {
        let cfg = Config {
            ids: SMOKE_IDS.iter().map(|s| (*s).to_owned()).collect(),
            timeout: SMOKE_TIMEOUT,
            ..Config::from_env()
        };
        eprintln!(
            "table1 --smoke: {} benchmarks, {}s deadline each, {} thread(s)",
            cfg.benchmarks().len(),
            cfg.timeout.as_secs(),
            if parallel == 0 {
                "all".to_owned()
            } else {
                parallel.to_string()
            }
        );
        let report = run_suite(&cfg, parallel);
        print!("{}", format_batch_solutions(&report));
        eprint!("{}", format_batch_stats(&report));
        if let Some(path) = &json {
            rbsyn_lang::persist::atomic_write(
                std::path::Path::new(path),
                batch_stats_json(&report).as_bytes(),
            )
            .expect("write --json file");
            eprintln!("stats written to {path}");
        }
        std::process::exit(if report.stats.solved == report.stats.jobs {
            0
        } else {
            1
        });
    }

    let cfg = Config::from_env();
    eprintln!(
        "table1: {} runs/benchmark, {}s timeout, {} benchmarks",
        cfg.runs,
        cfg.timeout.as_secs(),
        cfg.benchmarks().len()
    );
    let rows = table1_rows(&cfg);
    print!("{}", format_table1(&rows));
    if let Some(path) = &json {
        // Full mode reuses the batch JSON shape via a fresh solve pass? No —
        // Table 1 rows carry medians; serialize them directly.
        let mut out = String::from("{\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            let t = |d: &Option<Duration>| {
                d.map(|d| format!("{:.6}", d.as_secs_f64()))
                    .unwrap_or_else(|| "null".into())
            };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"te_median_secs\": {}, \"t_only_secs\": {}, \
                 \"e_only_secs\": {}, \"neither_secs\": {}, \"size\": {}, \"paths\": {}}}{sep}\n",
                r.id,
                t(&r.te_median),
                t(&r.t_only),
                t(&r.e_only),
                t(&r.neither),
                r.meth_size,
                r.syn_paths
            ));
        }
        out.push_str("  ]\n}\n");
        rbsyn_lang::persist::atomic_write(std::path::Path::new(path), out.as_bytes())
            .expect("write --json file");
        eprintln!("stats written to {path}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("table1: {msg}");
    std::process::exit(2);
}
