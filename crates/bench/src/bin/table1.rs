//! Regenerates Table 1 of the paper.
//!
//! ```text
//! RBSYN_RUNS=11 RBSYN_TIMEOUT_SECS=300 cargo run --release -p rbsyn-bench --bin table1
//! ```

use rbsyn_bench::harness::{format_table1, table1_rows, Config};

fn main() {
    let cfg = Config::from_env();
    eprintln!(
        "table1: {} runs/benchmark, {}s timeout, {} benchmarks",
        cfg.runs,
        cfg.timeout.as_secs(),
        cfg.benchmarks().len()
    );
    let rows = table1_rows(&cfg);
    print!("{}", format_table1(&rows));
}
