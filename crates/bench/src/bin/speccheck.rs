//! Corpus lint: parse + lower every `.rbspec` file and report diagnostics
//! without synthesizing — the fast CI gate over `benchmarks/` (and any
//! other spec directories or files passed as arguments).
//!
//! ```text
//! cargo run --release -p rbsyn-bench --bin speccheck -- [PATH …]
//! ```
//!
//! Paths may be directories (every `.rbspec` inside, subdirectories
//! included) or individual files; the default is `benchmarks`. Per file,
//! the tool
//! reports parse and lower wall time, spec/assert counts, and every
//! diagnostic; it keeps going after a failure so one pass names every
//! broken file. Exit code 3 (the spec parse/lower class, shared with
//! `solve`) when any file fails, 0 otherwise.

use rbsyn_bench::harness::exit_codes;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn collect(paths: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for p in paths {
        let path = Path::new(p);
        if path.is_dir() {
            files.extend(rbsyn_front::spec_paths_recursive(path)?);
        } else if path.is_file() {
            files.push(path.to_path_buf());
        } else {
            return Err(format!("{p}: no such file or directory"));
        }
    }
    Ok(files)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: speccheck [PATH …]   (default: benchmarks)");
        std::process::exit(exit_codes::USAGE);
    }
    let paths = if args.is_empty() {
        vec!["benchmarks".to_owned()]
    } else {
        args
    };
    let files = match collect(&paths) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("speccheck: {e}");
            std::process::exit(exit_codes::USAGE);
        }
    };

    let started = Instant::now();
    let mut failures = 0usize;
    let mut parse_secs = 0f64;
    let mut lower_secs = 0f64;
    for path in &files {
        let origin = path.display().to_string();
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                println!("FAIL  {origin}: cannot read: {e}");
                failures += 1;
                continue;
            }
        };
        let t0 = Instant::now();
        let parsed = rbsyn_front::parse(&source);
        let parse_time = t0.elapsed().as_secs_f64();
        parse_secs += parse_time;
        let file = match parsed {
            Ok(f) => f,
            Err(d) => {
                println!("FAIL  {origin} (parse)");
                print!("{}", d.render(&origin, &source));
                failures += 1;
                continue;
            }
        };
        let t1 = Instant::now();
        let lowered = rbsyn_front::lower(&file);
        let lower_time = t1.elapsed().as_secs_f64();
        lower_secs += lower_time;
        match lowered {
            Ok(l) => {
                let asserts: usize = l.problem.specs.iter().map(|s| s.asserts.len()).sum();
                println!(
                    "ok    {origin}: {} — {} spec(s), {} assert(s), {} search-visible methods \
                     (parse {:.1} ms, lower {:.1} ms)",
                    l.problem.name,
                    l.problem.specs.len(),
                    asserts,
                    l.env.table.search_visible_count(),
                    parse_time * 1e3,
                    lower_time * 1e3,
                );
            }
            Err(d) => {
                println!("FAIL  {origin} (lower)");
                print!("{}", d.render(&origin, &source));
                failures += 1;
            }
        }
    }
    println!(
        "speccheck: {}/{} file(s) ok in {:.2}s (parse {:.3}s, lower {:.3}s)",
        files.len() - failures,
        files.len(),
        started.elapsed().as_secs_f64(),
        parse_secs,
        lower_secs,
    );
    std::process::exit(if failures == 0 {
        exit_codes::OK
    } else {
        exit_codes::PARSE
    });
}
