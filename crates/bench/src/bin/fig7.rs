//! Regenerates Figure 7 (guidance-mode cactus plot) of the paper.

use rbsyn_bench::harness::{fig7_rows, format_fig7, Config};

fn main() {
    let cfg = Config::from_env();
    eprintln!(
        "fig7: {}s timeout, {} benchmarks × 4 guidance modes",
        cfg.timeout.as_secs(),
        cfg.benchmarks().len()
    );
    let rows = fig7_rows(&cfg);
    print!("{}", format_fig7(&rows));
}
