//! Criterion bench over the Table 1 benchmarks (full-guidance synthesis
//! time per benchmark), followed by a one-shot regeneration of the complete
//! table so `cargo bench` output contains it.
//!
//! The per-iteration measurement includes environment construction, exactly
//! like the paper's timings (which include app setup).

use criterion::{criterion_group, criterion_main, Criterion};
use rbsyn_bench::harness::{format_table1, run_benchmark, table1_rows, Config};
use rbsyn_core::Guidance;
use rbsyn_suite::all_benchmarks;
use rbsyn_ty::EffectPrecision;
use std::time::Duration;

/// Benchmarks measured under Criterion: the ones that finish in
/// milliseconds-to-a-second, so sampling stays tractable. The full set —
/// including the slow ones — is covered by the table regeneration below.
const SAMPLED: &[&str] = &["S1", "S2", "S4", "S7", "A2", "A5", "A7"];

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_te");
    group.sample_size(10);
    for b in all_benchmarks() {
        if !SAMPLED.contains(&b.id.as_str()) {
            continue;
        }
        group.bench_function(&b.id, |bench| {
            bench.iter(|| {
                let out = run_benchmark(
                    &b,
                    Guidance::both(),
                    EffectPrecision::Precise,
                    Duration::from_secs(120),
                    true,
                );
                assert!(out.succeeded(), "{} must synthesize", b.id);
                out.time
            });
        });
    }
    group.finish();
}

fn regenerate_table(_c: &mut Criterion) {
    let mut cfg = Config::from_env();
    if std::env::var("RBSYN_RUNS").is_err() {
        cfg.runs = 1;
    }
    if std::env::var("RBSYN_TIMEOUT_SECS").is_err() {
        cfg.timeout = Duration::from_secs(60);
    }
    eprintln!(
        "\nregenerating Table 1 ({} runs, {}s timeout, {}s ablation timeout)…",
        cfg.runs,
        cfg.timeout.as_secs(),
        cfg.ablation_timeout.as_secs()
    );
    let rows = table1_rows(&cfg);
    println!("\n===== Table 1 =====\n{}", format_table1(&rows));
}

criterion_group!(benches, bench_synthesis, regenerate_table);
criterion_main!(benches);
