//! Micro-benchmarks of the synthesizer's inner-loop primitives: subtyping,
//! effect subsumption, candidate enumeration, spec execution and SAT
//! implication. These are not paper experiments; they exist to catch
//! performance regressions in the machinery Table 1 depends on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rbsyn_core::{Guidance, Options};
use rbsyn_interp::{run_spec, InterpEnv};
use rbsyn_lang::builder::*;
use rbsyn_lang::{Program, Ty, Value};
use rbsyn_sat::{is_valid_implication, Formula};
use rbsyn_stdlib::EnvBuilder;
use rbsyn_ty::{effect_subsumed, is_subtype, EffectPrecision};

fn blog_env() -> (InterpEnv, rbsyn_lang::ClassId) {
    let mut b = EnvBuilder::with_stdlib();
    let post = b.define_model(
        "Post",
        &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
    );
    b.add_const(Value::Class(post));
    (b.finish(), post)
}

fn bench_subtyping(c: &mut Criterion) {
    let (env, post) = blog_env();
    let h = &env.table.hierarchy;
    let sub = Ty::Instance(post);
    let sup = Ty::union(vec![Ty::Instance(post), Ty::Nil, Ty::Str]);
    c.bench_function("micro/is_subtype_union", |b| {
        b.iter(|| is_subtype(h, black_box(&sub), black_box(&sup)))
    });
}

fn bench_effects(c: &mut Criterion) {
    let (env, post) = blog_env();
    let h = &env.table.hierarchy;
    let title = rbsyn_stdlib::eff::region(post, "title");
    let star = rbsyn_stdlib::eff::class_star(post);
    c.bench_function("micro/effect_subsumed", |b| {
        b.iter(|| effect_subsumed(h, black_box(&title), black_box(&star)))
    });
    c.bench_function("micro/precision_coarsen", |b| {
        b.iter(|| EffectPrecision::Class.apply(black_box(&title)))
    });
}

fn bench_enumeration(c: &mut Criterion) {
    let (env, post) = blog_env();
    c.bench_function("micro/candidates_returning", |b| {
        b.iter(|| {
            env.table
                .candidates_returning(black_box(&Ty::Instance(post)), &[])
        })
    });
    let want = rbsyn_stdlib::eff::region(post, "title");
    c.bench_function("micro/candidates_writing", |b| {
        b.iter(|| env.table.candidates_writing(black_box(&want), &[]))
    });
}

fn bench_spec_execution(c: &mut Criterion) {
    let (env, post) = blog_env();
    let spec = rbsyn_interp::Spec::new(
        "roundtrip",
        vec![
            rbsyn_interp::SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("slug", str_("s")), ("title", str_("T"))])],
            )),
            rbsyn_interp::SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![str_("s")],
            },
        ],
        vec![call(call(var("xr"), "title", []), "==", [str_("T")])],
    );
    let program = Program::new(
        "m",
        ["arg0"],
        call(cls(post), "find_by", [hash([("slug", var("arg0"))])]),
    );
    c.bench_function("micro/run_spec", |b| {
        b.iter(|| run_spec(black_box(&env), black_box(&spec), black_box(&program)))
    });
}

fn bench_db_workload(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    // Deterministic synthetic workload: 200 rows with skewed values, then
    // the equality selects the ActiveRecord layer issues.
    c.bench_function("micro/db_insert_select_200", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(42);
            let mut db = rbsyn_db::Database::new();
            let t = db.create_table(rbsyn_db::TableSchema::new("rows", ["a", "b"]));
            let a = rbsyn_lang::Symbol::intern("a");
            for _ in 0..200 {
                let v: i64 = rng.gen_range(0..10);
                db.table_mut(t).insert(vec![(a, rbsyn_lang::Value::Int(v))]);
            }
            let mut hits = 0;
            for v in 0..10 {
                hits += db.table(t).count_where(&[(a, rbsyn_lang::Value::Int(v))]);
            }
            assert_eq!(hits, 200);
            black_box(hits)
        })
    });
}

fn bench_sat(c: &mut Criterion) {
    let f1 = Formula::and(
        Formula::Var(0),
        Formula::or(Formula::Var(1), Formula::Var(2)),
    );
    let f2 = Formula::or(Formula::Var(0), Formula::Var(3));
    c.bench_function("micro/sat_implication", |b| {
        b.iter(|| is_valid_implication(black_box(&f1), black_box(&f2)))
    });
}

fn bench_end_to_end_small(c: &mut Criterion) {
    let bench = rbsyn_suite::benchmark("S2").expect("S2 exists");
    c.bench_function("micro/synthesize_s2", |b| {
        b.iter(|| {
            let (env, problem) = (bench.build)();
            let opts = Options {
                guidance: Guidance::both(),
                ..(bench.options)()
            };
            rbsyn_core::Synthesizer::new(env, problem, opts)
                .run()
                .expect("S2 synthesizes")
        })
    });
}

criterion_group!(
    benches,
    bench_subtyping,
    bench_effects,
    bench_enumeration,
    bench_spec_execution,
    bench_db_workload,
    bench_sat,
    bench_end_to_end_small
);
criterion_main!(benches);
