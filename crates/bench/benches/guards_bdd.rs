//! Microbenchmarks for the BDD-backed guard semantics (PR 8): truth-vector
//! interning throughput, covering-query latency on a warm BDD, and the
//! guard pool answering a 65-spec problem (one past the inline bitvector
//! word) with BDD semantics on versus off. The pool pair is the
//! fine-grained version of the suite-level `guard_time` target: the two
//! modes must stay within noise of each other, because the BDD layer is a
//! dedup cache over the same word arithmetic, not a replacement oracle.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rbsyn_bdd::{Bdd, IndexDomain, FALSE};
use rbsyn_core::engine::{Scheduler, SearchStats};
use rbsyn_core::guards::{GuardPool, GuardQuery};
use rbsyn_core::Options;
use rbsyn_interp::{InterpEnv, SetupStep, Spec};
use rbsyn_lang::builder::*;
use rbsyn_lang::{Ty, Value};
use rbsyn_stdlib::EnvBuilder;

fn blog_env() -> (InterpEnv, rbsyn_lang::ClassId) {
    let mut b = EnvBuilder::with_stdlib();
    let post = b.define_model(
        "Post",
        &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
    );
    b.add_const(Value::Class(post));
    (b.finish(), post)
}

/// A 65-spec problem mirroring the pool's oversized unit fixture: 32
/// seeded specs, 33 empty ones, so a `Post.exists?`-shaped guard
/// separates them and every bitvector spills past one word.
fn oversized_specs(post: rbsyn_lang::ClassId) -> Vec<Spec> {
    let mut specs = Vec::with_capacity(65);
    for i in 0..65 {
        let mut steps = Vec::new();
        if i < 32 {
            steps.push(SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("alice"))])],
            )));
        }
        steps.push(SetupStep::CallTarget {
            bind: "xr".into(),
            args: vec![],
        });
        specs.push(Spec::new(
            if i < 32 { "seeded" } else { "empty" },
            steps,
            vec![],
        ));
    }
    specs
}

/// Deterministic pseudo-random spec subsets — 256 distinct truth vectors
/// over a 64-index domain, the shape `Semantics::vector_set` interns.
fn vector_corpus() -> Vec<Vec<u64>> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut out = Vec::with_capacity(256);
    for _ in 0..256 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let word = state;
        out.push((0..64).filter(|i| word >> i & 1 == 1).collect());
    }
    out
}

/// Interning throughput: fold 256 distinct truth vectors into one reduced
/// BDD from scratch. This is the cost of the first scan over a fresh
/// covering request — every later scan hits the semantic-class map.
fn bench_intern_throughput(c: &mut Criterion) {
    let corpus = vector_corpus();
    c.bench_function("guards_bdd/intern_256_vectors", |b| {
        b.iter(|| {
            let mut bdd = Bdd::new();
            let dom = IndexDomain::new(64);
            let mut acc = FALSE;
            for v in &corpus {
                let set = dom.set(&mut bdd, v.iter().copied());
                acc = bdd.or(acc, set);
            }
            black_box((acc, bdd.node_count()))
        })
    });
}

/// Covering-query latency on a warm BDD: the `is_false(diff(p, t)) &&
/// is_false(diff(n, f))` shape `Semantics::decide` runs per unseen class.
/// The operation memo is warm after the first iteration, so this measures
/// the steady-state query the pool pays when a class key misses.
fn bench_covering_query(c: &mut Criterion) {
    let corpus = vector_corpus();
    let mut bdd = Bdd::new();
    let dom = IndexDomain::new(64);
    let p = dom.set(&mut bdd, (0u64..32).collect::<Vec<_>>());
    let n = dom.set(&mut bdd, (32u64..64).collect::<Vec<_>>());
    let vectors: Vec<_> = corpus
        .iter()
        .map(|v| {
            let t = dom.set(&mut bdd, v.iter().copied());
            let f = bdd.not(t);
            (t, f)
        })
        .collect();
    c.bench_function("guards_bdd/covering_query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (t, f) = vectors[i % vectors.len()];
            i += 1;
            let dp = bdd.diff(p, t);
            let dn = bdd.diff(n, f);
            black_box(bdd.is_false(dp) && bdd.is_false(dn))
        })
    });
}

/// The guard pool on the 65-spec problem, BDD semantics on vs off: a
/// fresh pool answers one covering request end to end (enumeration,
/// interpreter bits, covering scan), then re-answers it from the latched
/// request state. The on/off pair is the head-to-head the `no-bdd` CI leg
/// checks for determinism; here it pins the time cost of the BDD layer.
fn bench_pool_65spec(c: &mut Criterion) {
    let (env, post) = blog_env();
    let specs = oversized_specs(post);
    let pos: Vec<usize> = (0..32).collect();
    let neg: Vec<usize> = (32..65).collect();
    for bdd_on in [true, false] {
        let opts = Options {
            bdd: bdd_on,
            ..Options::default()
        };
        let sched = Scheduler::sequential();
        let q = GuardQuery {
            env: &env,
            name: "m".into(),
            params: &[],
            specs: &specs,
            opts: &opts,
            sched: &sched,
        };
        let label = if bdd_on { "on" } else { "off" };
        c.bench_function(&format!("guards_bdd/pool_65spec_first_{label}"), |b| {
            b.iter(|| {
                let mut pool = GuardPool::new();
                let mut stats = SearchStats::default();
                black_box(
                    pool.nth_covering_guard(&q, &pos, &neg, 0, 1, &mut stats)
                        .expect("no deadline"),
                )
            })
        });
        let mut pool = GuardPool::new();
        let mut stats = SearchStats::default();
        let g = pool
            .nth_covering_guard(&q, &pos, &neg, 0, 1, &mut stats)
            .expect("no deadline")
            .expect("a separating guard exists");
        c.bench_function(&format!("guards_bdd/pool_65spec_recheck_{label}"), |b| {
            b.iter(|| {
                let mut stats = SearchStats::default();
                black_box(pool.check_expr(&q, black_box(&g), &pos, &neg, &mut stats))
            })
        });
    }
}

criterion_group!(
    benches,
    bench_intern_throughput,
    bench_covering_query,
    bench_pool_65spec
);
criterion_main!(benches);
