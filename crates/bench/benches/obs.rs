//! Microbenchmarks for the oracle hot path introduced with evaluation
//! vectors (PR 5): single-test interpreter evaluation (untraced and
//! traced), copy-on-write world forking, and bitvector guard covering.
//! These pin a perf baseline finer than the suite: a regression in any of
//! them shows up here long before it moves the 19-benchmark wall clock.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rbsyn_core::engine::{Scheduler, SearchStats};
use rbsyn_core::guards::{GuardPool, GuardQuery};
use rbsyn_core::Options;
use rbsyn_interp::{InterpEnv, PreparedSpec, SetupStep, Spec, WorldState};
use rbsyn_lang::builder::*;
use rbsyn_lang::{Program, Symbol, Ty, Value};
use rbsyn_stdlib::EnvBuilder;

fn blog_env() -> (InterpEnv, rbsyn_lang::ClassId) {
    let mut b = EnvBuilder::with_stdlib();
    let post = b.define_model(
        "Post",
        &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
    );
    b.add_const(Value::Class(post));
    (b.finish(), post)
}

/// A spec with a seeded database, prepared once — the exact shape the
/// search's oracle hot loop runs millions of times.
fn prepared_fixture() -> (InterpEnv, PreparedSpec, Program) {
    let (env, post) = blog_env();
    let spec = Spec::new(
        "roundtrip",
        vec![
            SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("slug", str_("s")), ("title", str_("T"))])],
            )),
            SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![str_("s")],
            },
        ],
        vec![call(call(var("xr"), "title", []), "==", [str_("T")])],
    );
    let prepared = PreparedSpec::prepare(&env, &spec).expect("fixture spec prepares");
    let program = Program::new(
        "m",
        ["arg0"],
        call(cls(post), "find_by", [hash([("slug", var("arg0"))])]),
    );
    (env, prepared, program)
}

/// Single-test oracle evaluation from a prepared snapshot (no re-prepare,
/// unlike `micro/run_spec`) — the inner loop of candidate judging.
fn bench_prepared_eval(c: &mut Criterion) {
    let (env, prepared, program) = prepared_fixture();
    c.bench_function("obs/prepared_run", |b| {
        b.iter(|| prepared.run(black_box(&env), black_box(&program)))
    });
    // The traced variant adds the evaluation-vector fingerprint (result
    // value + COW-aware state hash + effect trace) — its overhead over
    // `obs/prepared_run` is the price of observational-equivalence dedup.
    c.bench_function("obs/prepared_run_traced", |b| {
        b.iter(|| prepared.run_traced(black_box(&env), black_box(&program)))
    });
}

/// Copy-on-write world forking: clone a frozen snapshot and write one
/// cell. Before PR 5 this deep-copied every table and heap object.
fn bench_world_fork(c: &mut Criterion) {
    let (env, post) = blog_env();
    let posts = env.model_table(post).expect("Post is a model");
    let mut snapshot = WorldState::fresh(&env);
    let title = Symbol::intern("title");
    let mut rows = Vec::new();
    for i in 0..64 {
        rows.push(
            snapshot
                .db
                .table_mut(posts)
                .insert(vec![(title, Value::str(&format!("t{i}")))]),
        );
    }
    snapshot.freeze();
    c.bench_function("obs/world_fork_readonly", |b| {
        b.iter(|| {
            let fork = snapshot.clone();
            black_box(fork.db.table(posts).len())
        })
    });
    c.bench_function("obs/world_fork_one_write", |b| {
        b.iter(|| {
            let mut fork = snapshot.clone();
            fork.db
                .table_mut(posts)
                .set(rows[0], title, Value::str("x"));
            black_box(fork.db.table(posts).len())
        })
    });
    c.bench_function("obs/world_fork_fingerprint", |b| {
        let fork = snapshot.clone();
        b.iter(|| black_box(fork.obs_fingerprint(&snapshot)))
    });
}

/// Bitvector guard covering: the first call pays the enumeration +
/// interpreter bits; re-requests (what merge backtracking does) are pure
/// word arithmetic over the pool's vectors.
fn bench_guard_covering(c: &mut Criterion) {
    let (env, post) = blog_env();
    let mk = |name: &str, seed: bool| {
        let mut steps = Vec::new();
        if seed {
            steps.push(SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("alice"))])],
            )));
        }
        steps.push(SetupStep::CallTarget {
            bind: "xr".into(),
            args: vec![],
        });
        Spec::new(name, steps, vec![])
    };
    let specs = vec![mk("seeded", true), mk("empty", false)];
    let opts = Options::default();
    let sched = Scheduler::sequential();
    let q = GuardQuery {
        env: &env,
        name: "m".into(),
        params: &[],
        specs: &specs,
        opts: &opts,
        sched: &sched,
    };
    let mut pool = GuardPool::new();
    let mut stats = SearchStats::default();
    // Warm the pool: both request directions judged once.
    let g = pool
        .nth_covering_guard(&q, &[0], &[1], 0, 1, &mut stats)
        .expect("no deadline")
        .expect("a separating guard exists");
    let _ = pool
        .nth_covering_guard(&q, &[1], &[0], 0, 1, &mut stats)
        .expect("no deadline");
    c.bench_function("obs/guard_bitvector_recheck", |b| {
        b.iter(|| {
            let mut stats = SearchStats::default();
            black_box(pool.check_expr(&q, black_box(&g), &[0], &[1], &mut stats))
        })
    });
    c.bench_function("obs/guard_bitvector_nth", |b| {
        b.iter(|| {
            let mut stats = SearchStats::default();
            pool.nth_covering_guard(&q, &[0], &[1], 0, 1, &mut stats)
                .expect("no deadline")
        })
    });
}

criterion_group!(
    benches,
    bench_prepared_eval,
    bench_world_fork,
    bench_guard_covering
);
criterion_main!(benches);
