//! Regenerates Figure 7 (guidance ablation) and Figure 8 (effect-precision
//! ablation) under `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use rbsyn_bench::harness::{fig7_rows, fig8_rows, format_fig7, format_fig8, Config};
use std::time::Duration;

fn cfg() -> Config {
    let mut cfg = Config::from_env();
    if std::env::var("RBSYN_TIMEOUT_SECS").is_err() {
        cfg.timeout = Duration::from_secs(60);
    }
    cfg
}

fn figure7(_c: &mut Criterion) {
    let cfg = cfg();
    eprintln!(
        "\nregenerating Figure 7 ({}s timeout)…",
        cfg.timeout.as_secs()
    );
    let rows = fig7_rows(&cfg);
    println!("\n===== Figure 7 =====\n{}", format_fig7(&rows));
}

fn figure8(_c: &mut Criterion) {
    let cfg = cfg();
    eprintln!(
        "\nregenerating Figure 8 ({}s timeout)…",
        cfg.timeout.as_secs()
    );
    let rows = fig8_rows(&cfg);
    println!("\n===== Figure 8 =====\n{}", format_fig8(&rows));
}

criterion_group!(benches, figure7, figure8);
criterion_main!(benches);
