//! Property tests: the BDD against truth tables and against the DPLL
//! solver, on random formulas over ≤ 8 variables.
//!
//! Three claims carry the guard-pool rewrite, so each gets its own
//! property:
//!
//! 1. **semantics** — `apply`/`ite`/`not`/`restrict` agree with brute-force
//!    truth-table evaluation of the source formula;
//! 2. **canonicity** — structural equality of node ids coincides with
//!    semantic equality of the functions (both directions);
//! 3. **determinism** — model enumeration is the lexicographic order of
//!    the truth table, independent of how the diagram was constructed.

use proptest::prelude::*;
use rbsyn_bdd::{Bdd, IndexDomain, NodeId, FALSE};
use rbsyn_sat::{is_satisfiable, Formula};

const NVARS: u32 = 8;

/// Random formulas over variables `0..NVARS`, depth-bounded.
fn arb_formula(depth: u32) -> BoxedStrategy<Formula> {
    if depth == 0 {
        return prop_oneof![
            (0u32..NVARS).prop_map(Formula::Var),
            Just(Formula::True),
            Just(Formula::False),
        ]
        .boxed();
    }
    let sub = arb_formula(depth - 1);
    prop_oneof![
        sub.clone().prop_map(Formula::not),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Formula::and(a, b)),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Formula::or(a, b)),
        sub,
    ]
    .boxed()
}

/// The 2^NVARS-entry truth table of a formula.
fn truth_table(f: &Formula) -> Vec<bool> {
    (0..1u32 << NVARS)
        .map(|bits| f.eval(&assignment(bits)))
        .collect()
}

fn assignment(bits: u32) -> Vec<bool> {
    (0..NVARS).map(|v| bits & (1 << v) != 0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apply_agrees_with_truth_tables(f in arb_formula(5)) {
        let mut bdd = Bdd::new();
        let node = bdd.from_formula(&f);
        for bits in 0..1u32 << NVARS {
            let a = assignment(bits);
            prop_assert_eq!(bdd.eval(node, &a), f.eval(&a), "assignment {:b} of {}", bits, f);
        }
    }

    #[test]
    fn ite_agrees_with_truth_tables(
        f in arb_formula(3),
        g in arb_formula(3),
        h in arb_formula(3),
    ) {
        let mut bdd = Bdd::new();
        let (nf, ng, nh) = (bdd.from_formula(&f), bdd.from_formula(&g), bdd.from_formula(&h));
        let ite = bdd.ite(nf, ng, nh);
        for bits in 0..1u32 << NVARS {
            let a = assignment(bits);
            let want = if f.eval(&a) { g.eval(&a) } else { h.eval(&a) };
            prop_assert_eq!(bdd.eval(ite, &a), want);
        }
    }

    #[test]
    fn restrict_is_the_cofactor(f in arb_formula(5), var in 0u32..NVARS, val in any::<bool>()) {
        let mut bdd = Bdd::new();
        let node = bdd.from_formula(&f);
        let cof = bdd.restrict(node, var, val);
        for bits in 0..1u32 << NVARS {
            let mut a = assignment(bits);
            a[var as usize] = val;
            prop_assert_eq!(bdd.eval(cof, &a), f.eval(&a));
        }
    }

    #[test]
    fn canonical_form_is_unique(f in arb_formula(4), g in arb_formula(4)) {
        // Shared manager: semantic equality ⇔ structural (id) equality.
        let mut bdd = Bdd::new();
        let nf = bdd.from_formula(&f);
        let ng = bdd.from_formula(&g);
        prop_assert_eq!(nf == ng, truth_table(&f) == truth_table(&g),
            "{} vs {}", f, g);
        // Negation is canonical too: ¬¬f is f, and ¬f never aliases f
        // unless… it can't — ¬f differs from f on every assignment.
        let not_f = bdd.not(nf);
        prop_assert_eq!(bdd.not(not_f), nf);
        prop_assert_ne!(not_f, nf);
    }

    #[test]
    fn satisfiability_agrees_with_dpll(f in arb_formula(5)) {
        // The in-repo DPLL solver is the independent oracle for the
        // covering path's is-false query.
        let mut bdd = Bdd::new();
        let node = bdd.from_formula(&f);
        prop_assert_eq!(!bdd.is_false(node), is_satisfiable(&f), "{}", f);
        prop_assert_eq!(bdd.sat_count(node, NVARS) > 0, is_satisfiable(&f));
    }

    #[test]
    fn model_enumeration_is_deterministic_and_lexicographic(f in arb_formula(5)) {
        let mut bdd = Bdd::new();
        let node = bdd.from_formula(&f);
        let models = bdd.models(node, NVARS);
        // Brute-force reference, in lexicographic (var 0 major) order.
        let mut want: Vec<Vec<bool>> = (0..1u32 << NVARS)
            .map(assignment)
            .filter(|a| f.eval(a))
            .collect();
        want.sort();
        prop_assert_eq!(&models, &want, "{}", f);
        // Rebuilding the same function from a different syntactic route
        // enumerates in the same order (determinism is a function of the
        // semantics, not the construction).
        let mut bdd2 = Bdd::new();
        let double_neg = Formula::not(Formula::not(f.clone()));
        let node2 = bdd2.from_formula(&double_neg);
        prop_assert_eq!(bdd2.models(node2, NVARS), models);
        prop_assert_eq!(bdd.sat_count(node, NVARS), want.len() as u128);
    }

    #[test]
    fn index_sets_enumerate_ascending(mut idxs in prop::collection::vec(0u64..200, 0..24)) {
        let mut bdd = Bdd::new();
        let dom = IndexDomain::new(200);
        let set = dom.set(&mut bdd, idxs.iter().copied());
        idxs.sort_unstable();
        idxs.dedup();
        prop_assert_eq!(dom.indices(&bdd, set), idxs.clone());
        let empty: NodeId = dom.set(&mut bdd, std::iter::empty());
        prop_assert_eq!(empty, FALSE);
        prop_assert_eq!(bdd.sat_count(set, dom.nvars()), idxs.len() as u128);
    }
}
