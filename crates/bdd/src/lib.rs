//! Reduced-ordered binary decision diagrams (ROBDDs) for the guard pool.
//!
//! The guard pool's per-spec pass/fail bitvectors are truth tables in
//! disguise; this crate gives them a *canonical* form. A [`Bdd`] manager
//! hash-conses decision nodes over a fixed variable order into a unique
//! table, so two boolean functions are semantically equal **iff** they
//! intern to the same [`NodeId`] — that single property is what turns
//! "have we seen a guard with these semantics before?" into a pointer
//! compare, and "does some spec satisfy `P ∧ ¬T`?" into an is-false check
//! on an [`Bdd::and`]/[`Bdd::not`] result.
//!
//! The implementation is the textbook reduced-ordered construction
//! (Bryant 1986; `mk` + memoized `apply`/`ite`/`restrict`), with:
//!
//! * a **canonical negation** — `not` is memoized and produces the unique
//!   reduced diagram of `¬f`, so double negation is literally the
//!   identity map (`bdd.not(bdd.not(f)) == f`). Complement edges were
//!   considered and rejected: they halve node counts but double every
//!   invariant, and the guard workload is query-bound, not space-bound;
//! * **deterministic model enumeration** — [`Bdd::models`] walks the
//!   diagram lexicographically (variable 0 first, `false` before `true`),
//!   so enumeration order is a pure function of the function itself, never
//!   of construction history. [`IndexDomain`] builds on that to encode
//!   *spec-index sets* over `⌈log₂ n⌉` variables with variable 0 as the
//!   most significant bit, making lexicographic model order coincide with
//!   ascending spec index — the order every covering query must preserve;
//! * a bridge to the workspace's DPLL solver: [`Bdd::from_formula`]
//!   compiles an [`rbsyn_sat::Formula`] to a node, so `rbsyn-sat` acts as
//!   the BDD's independent satisfiability oracle (the property tests
//!   cross-check `is_false` against [`rbsyn_sat::is_satisfiable`]).
//!
//! No `unsafe`, no crates.io dependencies, no interior mutability: the
//! manager is a plain `&mut` value, which is exactly what the per-problem
//! [`GuardPool`](../rbsyn_core/guards/struct.GuardPool.html) wants — BDD
//! state lives and dies with the problem, and sharing across threads never
//! happens by construction.

use rbsyn_lang::FxBuild;
use rbsyn_sat::Formula;
use std::collections::HashMap;

/// A handle to a node in one [`Bdd`] manager. Handles from different
/// managers are unrelated; mixing them is a logic error (caught by the
/// range asserts in debug builds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u32);

/// The constant-false terminal.
pub const FALSE: NodeId = NodeId(0);
/// The constant-true terminal.
pub const TRUE: NodeId = NodeId(1);

impl NodeId {
    /// Raw index (diagnostics; dense per manager).
    pub fn index(self) -> u32 {
        self.0
    }

    fn is_terminal(self) -> bool {
        self.0 < 2
    }
}

/// One decision node: branch on `var`, follow `lo` when false, `hi` when
/// true. Terminals carry `var == u32::MAX` so the "top variable" of any
/// pair of nodes is a plain `min`.
#[derive(Clone, Copy)]
struct Node {
    var: u32,
    lo: NodeId,
    hi: NodeId,
}

/// Binary connectives served by the shared apply memo.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// A reduced-ordered BDD manager (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use rbsyn_bdd::{Bdd, FALSE, TRUE};
/// let mut bdd = Bdd::new();
/// let x = bdd.var(0);
/// let y = bdd.var(1);
/// // x ∧ ¬x is canonically false; x ∨ y is satisfiable.
/// let nx = bdd.not(x);
/// assert_eq!(bdd.and(x, nx), FALSE);
/// let xy = bdd.or(x, y);
/// assert_ne!(xy, FALSE);
/// // Canonicity: same function, same node — however it was built.
/// let yx = bdd.or(y, x);
/// assert_eq!(xy, yx);
/// // Model enumeration over 2 variables, lexicographic: 01, 10, 11.
/// assert_eq!(bdd.models(xy, 2), vec![vec![false, true], vec![true, false], vec![true, true]]);
/// # let _ = TRUE;
/// ```
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, NodeId, NodeId), NodeId, FxBuild>,
    apply_memo: HashMap<(Op, NodeId, NodeId), NodeId, FxBuild>,
    not_memo: HashMap<NodeId, NodeId, FxBuild>,
    ite_memo: HashMap<(NodeId, NodeId, NodeId), NodeId, FxBuild>,
    restrict_memo: HashMap<(NodeId, u32, bool), NodeId, FxBuild>,
}

impl Default for Bdd {
    fn default() -> Bdd {
        Bdd::new()
    }
}

impl Bdd {
    /// A manager holding only the two terminals.
    pub fn new() -> Bdd {
        let terminal = |id| Node {
            var: u32::MAX,
            lo: id,
            hi: id,
        };
        Bdd {
            nodes: vec![terminal(FALSE), terminal(TRUE)],
            unique: HashMap::default(),
            apply_memo: HashMap::default(),
            not_memo: HashMap::default(),
            ite_memo: HashMap::default(),
            restrict_memo: HashMap::default(),
        }
    }

    /// Total allocated nodes, terminals included — the `bdd_nodes`
    /// telemetry counter.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn var_of(&self, f: NodeId) -> u32 {
        self.nodes[f.0 as usize].var
    }

    fn node(&self, f: NodeId) -> Node {
        self.nodes[f.0 as usize]
    }

    /// The unique reduced node for `(var, lo, hi)`: redundant tests
    /// collapse to the child, structurally equal nodes share an id. Every
    /// constructor funnels through here, which is the whole canonicity
    /// argument.
    fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var < self.var_of(lo).min(self.var_of(hi)),
            "children must test strictly later variables"
        );
        *self.unique.entry((var, lo, hi)).or_insert_with(|| {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("BDD node space exhausted"));
            self.nodes.push(Node { var, lo, hi });
            id
        })
    }

    /// The single-variable function `vᵢ`.
    pub fn var(&mut self, v: u32) -> NodeId {
        self.mk(v, FALSE, TRUE)
    }

    /// The single-variable function `¬vᵢ`.
    pub fn nvar(&mut self, v: u32) -> NodeId {
        self.mk(v, TRUE, FALSE)
    }

    /// Canonical negation `¬f` (memoized; an involution by construction).
    pub fn not(&mut self, f: NodeId) -> NodeId {
        match f {
            FALSE => return TRUE,
            TRUE => return FALSE,
            _ => {}
        }
        if let Some(&r) = self.not_memo.get(&f) {
            return r;
        }
        let n = self.node(f);
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_memo.insert(f, r);
        self.not_memo.insert(r, f);
        r
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(Op::And, f, g)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(Op::Or, f, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(Op::Xor, f, g)
    }

    /// `f ∧ ¬g` — the covering queries' workhorse ("does `f` reach any
    /// index outside `g`?").
    pub fn diff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Does `f ⇒ g` hold for every assignment? (`f ∧ ¬g` is false.)
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let nf = self.not(f);
        self.or(nf, g)
    }

    fn apply(&mut self, op: Op, f: NodeId, g: NodeId) -> NodeId {
        // Terminal rules first: they keep the memo small and the common
        // short-circuits allocation-free.
        match (op, f, g) {
            (Op::And, FALSE, _) | (Op::And, _, FALSE) => return FALSE,
            (Op::And, TRUE, x) | (Op::And, x, TRUE) => return x,
            (Op::Or, TRUE, _) | (Op::Or, _, TRUE) => return TRUE,
            (Op::Or, FALSE, x) | (Op::Or, x, FALSE) => return x,
            (Op::Xor, FALSE, x) | (Op::Xor, x, FALSE) => return x,
            (Op::Xor, TRUE, x) | (Op::Xor, x, TRUE) => return self.not(x),
            _ => {}
        }
        if f == g {
            return match op {
                Op::And | Op::Or => f,
                Op::Xor => FALSE,
            };
        }
        // All three connectives commute: normalize the key.
        let key = (op, f.min(g), f.max(g));
        if let Some(&r) = self.apply_memo.get(&key) {
            return r;
        }
        let (nf, ng) = (self.node(f), self.node(g));
        let top = nf.var.min(ng.var);
        let (f_lo, f_hi) = if nf.var == top {
            (nf.lo, nf.hi)
        } else {
            (f, f)
        };
        let (g_lo, g_hi) = if ng.var == top {
            (ng.lo, ng.hi)
        } else {
            (g, g)
        };
        let lo = self.apply(op, f_lo, g_lo);
        let hi = self.apply(op, f_hi, g_hi);
        let r = self.mk(top, lo, hi);
        self.apply_memo.insert(key, r);
        r
    }

    /// `if f then g else h`, the ternary normal form every other
    /// connective factors through.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        match (f, g, h) {
            (TRUE, g, _) => return g,
            (FALSE, _, h) => return h,
            (f, TRUE, FALSE) => return f,
            (f, FALSE, TRUE) => return self.not(f),
            _ => {}
        }
        if g == h {
            return g;
        }
        if let Some(&r) = self.ite_memo.get(&(f, g, h)) {
            return r;
        }
        let (nf, ng, nh) = (self.node(f), self.node(g), self.node(h));
        let top = nf.var.min(ng.var).min(nh.var);
        let split = |n: Node, id: NodeId| {
            if n.var == top {
                (n.lo, n.hi)
            } else {
                (id, id)
            }
        };
        let (f_lo, f_hi) = split(nf, f);
        let (g_lo, g_hi) = split(ng, g);
        let (h_lo, h_hi) = split(nh, h);
        let lo = self.ite(f_lo, g_lo, h_lo);
        let hi = self.ite(f_hi, g_hi, h_hi);
        let r = self.mk(top, lo, hi);
        self.ite_memo.insert((f, g, h), r);
        r
    }

    /// The cofactor `f[var := val]`.
    pub fn restrict(&mut self, f: NodeId, var: u32, val: bool) -> NodeId {
        if f.is_terminal() || self.var_of(f) > var {
            return f;
        }
        if let Some(&r) = self.restrict_memo.get(&(f, var, val)) {
            return r;
        }
        let n = self.node(f);
        let r = if n.var == var {
            if val {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.restrict(n.lo, var, val);
            let hi = self.restrict(n.hi, var, val);
            self.mk(n.var, lo, hi)
        };
        self.restrict_memo.insert((f, var, val), r);
        r
    }

    /// Is the function constant false? Canonicity makes unsatisfiability a
    /// pointer compare — this *is* the SAT query of the covering path.
    pub fn is_false(&self, f: NodeId) -> bool {
        f == FALSE
    }

    /// Is the function constant true (valid)?
    pub fn is_true(&self, f: NodeId) -> bool {
        f == TRUE
    }

    /// Evaluates `f` under an assignment (index = variable; variables past
    /// the slice end read `false`).
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.node(cur);
            cur = if assignment.get(n.var as usize).copied().unwrap_or(false) {
                n.hi
            } else {
                n.lo
            };
        }
        cur == TRUE
    }

    /// Number of satisfying assignments over variables `0..nvars` (every
    /// node's variable must be `< nvars`).
    pub fn sat_count(&self, f: NodeId, nvars: u32) -> u128 {
        fn go(bdd: &Bdd, f: NodeId, nvars: u32, memo: &mut HashMap<NodeId, u128, FxBuild>) -> u128 {
            // Count below `f`, normalized to the level *just under* f's
            // variable; terminals sit at level `nvars`.
            if f == FALSE {
                return 0;
            }
            if f == TRUE {
                return 1;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let n = bdd.node(f);
            let level = |id: NodeId| bdd.var_of(id).min(nvars);
            let lo = go(bdd, n.lo, nvars, memo) << (level(n.lo) - n.var - 1);
            let hi = go(bdd, n.hi, nvars, memo) << (level(n.hi) - n.var - 1);
            let c = lo + hi;
            memo.insert(f, c);
            c
        }
        assert!(
            f.is_terminal() || self.var_of(f) < nvars,
            "nvars must cover every variable of f"
        );
        let mut memo = HashMap::default();
        let top = if f.is_terminal() {
            nvars
        } else {
            self.var_of(f)
        };
        go(self, f, nvars, &mut memo) << top
    }

    /// All satisfying assignments over variables `0..nvars`, in
    /// lexicographic order (variable 0 first, `false` before `true`).
    /// Deterministic by construction: the order depends only on the
    /// function, never on how its diagram was built.
    pub fn models(&self, f: NodeId, nvars: u32) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        let mut prefix = Vec::with_capacity(nvars as usize);
        self.models_walk(f, nvars, &mut prefix, &mut out);
        out
    }

    fn models_walk(&self, f: NodeId, nvars: u32, prefix: &mut Vec<bool>, out: &mut Vec<Vec<bool>>) {
        if f == FALSE {
            return;
        }
        if prefix.len() == nvars as usize {
            debug_assert_eq!(f, TRUE, "variables past nvars are not allowed");
            out.push(prefix.clone());
            return;
        }
        let depth = prefix.len() as u32;
        let (lo, hi) = if !f.is_terminal() && self.var_of(f) == depth {
            let n = self.node(f);
            (n.lo, n.hi)
        } else {
            // `f` does not test this variable: both branches continue.
            (f, f)
        };
        prefix.push(false);
        self.models_walk(lo, nvars, prefix, out);
        prefix.pop();
        prefix.push(true);
        self.models_walk(hi, nvars, prefix, out);
        prefix.pop();
    }

    /// Compiles a propositional [`Formula`] (the `rbsyn-sat` AST) to a
    /// node. This makes the DPLL solver and the BDD two engines over one
    /// formula type — each the other's differential test oracle.
    pub fn from_formula(&mut self, f: &Formula) -> NodeId {
        match f {
            Formula::True => TRUE,
            Formula::False => FALSE,
            Formula::Var(v) => self.var(*v),
            Formula::Not(x) => {
                let x = self.from_formula(x);
                self.not(x)
            }
            Formula::And(a, b) => {
                let a = self.from_formula(a);
                let b = self.from_formula(b);
                self.and(a, b)
            }
            Formula::Or(a, b) => {
                let a = self.from_formula(a);
                let b = self.from_formula(b);
                self.or(a, b)
            }
        }
    }
}

/// Spec-index sets as BDDs: indices `0..n` encoded over `⌈log₂ n⌉`
/// variables, variable 0 the **most significant** bit, so lexicographic
/// model order (the [`Bdd::models`] order) is ascending index order.
///
/// # Example
///
/// ```
/// use rbsyn_bdd::{Bdd, IndexDomain};
/// let mut bdd = Bdd::new();
/// let dom = IndexDomain::new(65); // 7 variables cover indices 0..65
/// let set = dom.set(&mut bdd, [64u64, 3, 17]);
/// assert_eq!(dom.indices(&bdd, set), vec![3, 17, 64]); // ascending
/// let all = dom.set(&mut bdd, 0..65u64);
/// let rest = bdd.diff(all, set);
/// assert_eq!(dom.indices(&bdd, rest).len(), 62);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct IndexDomain {
    nvars: u32,
}

impl IndexDomain {
    /// The domain covering indices `0..n_indices`.
    pub fn new(n_indices: usize) -> IndexDomain {
        let mut nvars = 1;
        while (1u64 << nvars) < n_indices as u64 {
            nvars += 1;
        }
        IndexDomain { nvars }
    }

    /// Number of index variables.
    pub fn nvars(&self) -> u32 {
        self.nvars
    }

    /// The minterm selecting exactly index `i`.
    pub fn minterm(&self, bdd: &mut Bdd, i: u64) -> NodeId {
        assert!(i < 1u64 << self.nvars, "index {i} out of domain");
        // Build bottom-up (least significant variable first) so every
        // `mk` sees children over strictly later variables.
        let mut node = TRUE;
        for v in (0..self.nvars).rev() {
            let bit = (i >> (self.nvars - 1 - v)) & 1 == 1;
            node = if bit {
                bdd.mk(v, FALSE, node)
            } else {
                bdd.mk(v, node, FALSE)
            };
        }
        node
    }

    /// The set `{i : i ∈ idxs}` as a disjunction of minterms.
    pub fn set(&self, bdd: &mut Bdd, idxs: impl IntoIterator<Item = u64>) -> NodeId {
        let mut acc = FALSE;
        for i in idxs {
            let m = self.minterm(bdd, i);
            acc = bdd.or(acc, m);
        }
        acc
    }

    /// Decodes one assignment back to its index.
    pub fn decode(&self, assignment: &[bool]) -> u64 {
        assignment
            .iter()
            .take(self.nvars as usize)
            .fold(0u64, |acc, &b| (acc << 1) | u64::from(b))
    }

    /// All indices in the set, ascending ([`Bdd::models`] order + the
    /// big-endian encoding).
    pub fn indices(&self, bdd: &Bdd, set: NodeId) -> Vec<u64> {
        bdd.models(set, self.nvars)
            .iter()
            .map(|m| self.decode(m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut b = Bdd::new();
        assert_eq!(b.node_count(), 2);
        let x = b.var(0);
        assert_eq!(b.var(0), x, "unique table shares nodes");
        let nx = b.not(x);
        assert_eq!(b.nvar(0), nx);
        assert_eq!(b.not(nx), x, "negation is an involution");
        assert_eq!(b.and(x, nx), FALSE);
        assert_eq!(b.or(x, nx), TRUE);
    }

    #[test]
    fn canonical_across_construction_orders() {
        let mut b = Bdd::new();
        let (x, y, z) = (b.var(0), b.var(1), b.var(2));
        // (x ∧ y) ∨ z three different ways.
        let xy = b.and(x, y);
        let a = b.or(xy, z);
        let zx = b.or(z, xy);
        assert_eq!(a, zx);
        // De Morgan: ¬(¬x ∨ ¬y) == x ∧ y.
        let nx = b.not(x);
        let ny = b.not(y);
        let o = b.or(nx, ny);
        let demorgan = b.not(o);
        assert_eq!(demorgan, xy);
    }

    #[test]
    fn ite_factors_connectives() {
        let mut b = Bdd::new();
        let (x, y) = (b.var(0), b.var(1));
        let and = b.and(x, y);
        assert_eq!(b.ite(x, y, FALSE), and);
        let or = b.or(x, y);
        assert_eq!(b.ite(x, TRUE, y), or);
        let ny = b.not(y);
        let xor = b.xor(x, y);
        assert_eq!(b.ite(x, ny, y), xor);
    }

    #[test]
    fn restrict_cofactors() {
        let mut b = Bdd::new();
        let (x, y) = (b.var(0), b.var(1));
        let f = b.xor(x, y);
        let ny = b.not(y);
        assert_eq!(b.restrict(f, 0, true), ny);
        assert_eq!(b.restrict(f, 0, false), y);
        assert_eq!(b.restrict(f, 2, true), f, "absent variable is a no-op");
    }

    #[test]
    fn sat_count_and_models() {
        let mut b = Bdd::new();
        let (x, y, z) = (b.var(0), b.var(1), b.var(2));
        let xy = b.and(x, y);
        let f = b.or(xy, z);
        assert_eq!(b.sat_count(f, 3), 5);
        let models = b.models(f, 3);
        assert_eq!(models.len(), 5);
        // Lexicographic: 001, 011, 100 (x∧y? no: 100 has z=0... check), …
        let as_bits: Vec<u8> = models
            .iter()
            .map(|m| m.iter().fold(0u8, |a, &v| (a << 1) | u8::from(v)))
            .collect();
        assert_eq!(as_bits, vec![0b001, 0b011, 0b101, 0b110, 0b111]);
        assert!(models.iter().all(|m| b.eval(f, m)));
        assert_eq!(b.sat_count(TRUE, 3), 8);
        assert_eq!(b.sat_count(FALSE, 3), 0);
    }

    #[test]
    fn index_domain_roundtrips_ascending() {
        let mut b = Bdd::new();
        let dom = IndexDomain::new(65);
        assert_eq!(dom.nvars(), 7);
        let set = dom.set(&mut b, [64u64, 0, 13, 40]);
        assert_eq!(dom.indices(&b, set), vec![0, 13, 40, 64]);
        assert_eq!(b.sat_count(set, dom.nvars()), 4);
        // Difference against the full domain enumerates the complement.
        let all = dom.set(&mut b, 0..65u64);
        let rest = b.diff(all, set);
        let idxs = dom.indices(&b, rest);
        assert_eq!(idxs.len(), 61);
        assert!(!idxs.contains(&13));
        assert!(idxs.contains(&63));
    }

    #[test]
    fn single_index_domain() {
        let mut b = Bdd::new();
        let dom = IndexDomain::new(1);
        assert_eq!(dom.nvars(), 1);
        let s = dom.set(&mut b, [0u64]);
        assert_eq!(dom.indices(&b, s), vec![0]);
    }

    #[test]
    fn formula_bridge_agrees_with_dpll() {
        use rbsyn_sat::is_satisfiable;
        let cases = [
            Formula::True,
            Formula::False,
            Formula::and(Formula::Var(0), Formula::not(Formula::Var(0))),
            Formula::implies(
                Formula::Var(0),
                Formula::or(Formula::Var(0), Formula::Var(1)),
            ),
            Formula::and(
                Formula::or(Formula::Var(0), Formula::Var(1)),
                Formula::and(Formula::not(Formula::Var(0)), Formula::not(Formula::Var(1))),
            ),
        ];
        for f in &cases {
            let mut b = Bdd::new();
            let n = b.from_formula(f);
            assert_eq!(!b.is_false(n), is_satisfiable(f), "disagree on {f}");
        }
    }
}
