//! Reference-solution tests: hand-written programs — the ones a Rails
//! developer (or the paper's Fig. 2) would write — must pass each
//! benchmark's specs. This validates that the reconstructed specs are
//! satisfiable by the *intended* method, independently of what the search
//! finds.

use rbsyn_interp::run_spec;
use rbsyn_lang::builder::*;
use rbsyn_lang::{ClassId, Expr, Program};
use rbsyn_suite::benchmark;

fn class_of(env: &rbsyn_interp::InterpEnv, name: &str) -> ClassId {
    env.table
        .hierarchy
        .find(name)
        .unwrap_or_else(|| panic!("class {name} exists"))
}

fn assert_passes(id: &str, body: Expr, params: &[&str]) {
    let b = benchmark(id).unwrap_or_else(|| panic!("benchmark {id} exists"));
    let (env, problem) = (b.build)();
    let program = Program::new(problem.name.as_str(), params.iter().copied(), body);
    for spec in &problem.specs {
        assert!(
            run_spec(&env, spec, &program).passed(),
            "{id}: reference solution fails {:?}\n{program}",
            spec.name
        );
    }
}

#[test]
fn s1_reference_identity() {
    assert_passes("S1", var("arg0"), &["arg0"]);
}

#[test]
fn s2_reference_false() {
    assert_passes("S2", false_(), &[]);
}

#[test]
fn s3_reference_lookup_chain() {
    let b = benchmark("S3").unwrap();
    let (env, _) = (b.build)();
    let user = class_of(&env, "User");
    assert_passes(
        "S3",
        call(
            call(cls(user), "find_by", [hash([("username", var("arg0"))])]),
            "name",
            [],
        ),
        &["arg0"],
    );
}

#[test]
fn s4_reference_exists_query() {
    let b = benchmark("S4").unwrap();
    let (env, _) = (b.build)();
    let user = class_of(&env, "User");
    assert_passes(
        "S4",
        call(cls(user), "exists?", [hash([("username", var("arg0"))])]),
        &["arg0"],
    );
}

#[test]
fn s5_reference_branching() {
    let b = benchmark("S5").unwrap();
    let (env, _) = (b.build)();
    let user = class_of(&env, "User");
    assert_passes(
        "S5",
        if_(
            call(cls(user), "exists?", [hash([("username", var("arg0"))])]),
            call(
                call(cls(user), "find_by", [hash([("username", var("arg0"))])]),
                "name",
                [],
            ),
            str_(""),
        ),
        &["arg0"],
    );
}

/// The exact solution of the paper's Fig. 2 passes the two Fig. 1 specs of
/// the overview benchmark. (S6 adds a third "ext" spec about slug updates
/// that Fig. 2's program intentionally does not cover.)
#[test]
fn s6_fig2_solution_passes_the_overview_specs() {
    let b = benchmark("S6").unwrap();
    let (env, problem) = (b.build)();
    let post = class_of(&env, "Post");
    let where_first = call(
        call(cls(post), "where", [hash([("slug", var("arg1"))])]),
        "first",
        [],
    );
    let body = if_(
        call(
            cls(post),
            "exists?",
            [hash([("author", var("arg0")), ("slug", var("arg1"))])],
        ),
        let_(
            "t0",
            where_first.clone(),
            seq([
                call(
                    var("t0"),
                    "title=",
                    [call(var("arg2"), "[]", [sym("title")])],
                ),
                var("t0"),
            ]),
        ),
        where_first,
    );
    let program = Program::new("update_post", ["arg0", "arg1", "arg2"], body);
    for spec in problem.specs.iter().take(2) {
        assert!(
            run_spec(&env, spec, &program).passed(),
            "Fig. 2 program fails {:?}\n{program}",
            spec.name
        );
    }
}

#[test]
fn s7_reference_single_line() {
    let b = benchmark("S7").unwrap();
    let (env, _) = (b.build)();
    let post = class_of(&env, "Post");
    assert_passes(
        "S7",
        call(cls(post), "exists?", [hash([("author", var("arg0"))])]),
        &["arg0"],
    );
}

#[test]
fn a2_reference_activate() {
    let b = benchmark("A2").unwrap();
    let (env, _) = (b.build)();
    let user = class_of(&env, "User");
    assert_passes(
        "A2",
        if_(
            call(cls(user), "exists?", [hash([("username", var("arg0"))])]),
            let_(
                "t0",
                call(cls(user), "find_by", [hash([("username", var("arg0"))])]),
                seq([
                    call(var("t0"), "active=", [true_()]),
                    call(var("t0"), "email_confirmed=", [true_()]),
                    var("t0"),
                ]),
            ),
            nil(),
        ),
        &["arg0"],
    );
}

#[test]
fn a3_reference_unstage() {
    let b = benchmark("A3").unwrap();
    let (env, _) = (b.build)();
    let user = class_of(&env, "User");
    assert_passes(
        "A3",
        if_(
            call(
                cls(user),
                "exists?",
                [hash([("username", var("arg0")), ("staged", true_())])],
            ),
            let_(
                "t0",
                call(cls(user), "find_by", [hash([("username", var("arg0"))])]),
                seq([call(var("t0"), "staged=", [false_()]), var("t0")]),
            ),
            nil(),
        ),
        &["arg0"],
    );
}

#[test]
fn a7_reference_close() {
    let b = benchmark("A7").unwrap();
    let (env, _) = (b.build)();
    let issue = class_of(&env, "Issue");
    assert_passes(
        "A7",
        let_(
            "t0",
            call(cls(issue), "find_by", [hash([("title", var("arg0"))])]),
            seq([call(var("t0"), "state=", [str_("closed")]), var("t0")]),
        ),
        &["arg0"],
    );
}

#[test]
fn a8_reference_reopen() {
    let b = benchmark("A8").unwrap();
    let (env, _) = (b.build)();
    let issue = class_of(&env, "Issue");
    assert_passes(
        "A8",
        let_(
            "t0",
            call(cls(issue), "find_by", [hash([("title", var("arg0"))])]),
            seq([
                call(var("t0"), "state=", [str_("opened")]),
                call(var("t0"), "confidential=", [false_()]),
                var("t0"),
            ]),
        ),
        &["arg0"],
    );
}

#[test]
fn a9_reference_schedule_check() {
    let b = benchmark("A9").unwrap();
    let (env, _) = (b.build)();
    let pod = class_of(&env, "Pod");
    assert_passes(
        "A9",
        if_(
            call(
                cls(pod),
                "exists?",
                [hash([("host", var("arg0")), ("status", str_("offline"))])],
            ),
            let_(
                "t0",
                call(cls(pod), "find_by", [hash([("host", var("arg0"))])]),
                seq([
                    call(
                        var("t0"),
                        "update!",
                        [hash([("status", str_("scheduled"))])],
                    ),
                    var("t0"),
                ]),
            ),
            call(cls(pod), "find_by", [hash([("host", var("arg0"))])]),
        ),
        &["arg0"],
    );
}

#[test]
fn a10_reference_process_invite() {
    let b = benchmark("A10").unwrap();
    let (env, _) = (b.build)();
    let code = class_of(&env, "InvitationCode");
    assert_passes(
        "A10",
        seq([
            call(
                call(cls(code), "find_by", [hash([("token", var("arg0"))])]),
                "count=",
                [int(0)],
            ),
            true_(),
        ]),
        &["arg0"],
    );
}

#[test]
fn a11_reference_use_code() {
    let b = benchmark("A11").unwrap();
    let (env, _) = (b.build)();
    let code = class_of(&env, "InvitationCode");
    assert_passes(
        "A11",
        let_(
            "t0",
            call(cls(code), "find_by", [hash([("token", var("arg0"))])]),
            seq([
                call(
                    var("t0"),
                    "count=",
                    [call(call(var("t0"), "count", []), "pred", [])],
                ),
                var("t0"),
            ]),
        ),
        &["arg0"],
    );
}

#[test]
fn a12_reference_confirm_email() {
    let b = benchmark("A12").unwrap();
    let (env, _) = (b.build)();
    let user = class_of(&env, "User");
    let find = call(
        cls(user),
        "find_by",
        [hash([("confirm_token", var("arg0"))])],
    );
    assert_passes(
        "A12",
        if_(
            call(
                cls(user),
                "exists?",
                [hash([
                    ("confirm_token", var("arg0")),
                    ("email_confirmed", false_()),
                ])],
            ),
            let_(
                "t0",
                find.clone(),
                seq([
                    call(
                        var("t0"),
                        "email=",
                        [call(var("t0"), "unconfirmed_email", [])],
                    ),
                    call(var("t0"), "email_confirmed=", [true_()]),
                    var("t0"),
                ]),
            ),
            if_(
                call(
                    cls(user),
                    "exists?",
                    [hash([("confirm_token", var("arg0"))])],
                ),
                find,
                nil(),
            ),
        ),
        &["arg0"],
    );
}
