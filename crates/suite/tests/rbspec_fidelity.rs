//! Registry-fidelity diff gate: every `.rbspec` corpus file must lower to
//! exactly the problem its Rust-built registry twin produces.
//!
//! "Exactly" means: equal problem ASTs (compared via `Debug`, which
//! includes class ids, so any drift in declaration order shows up),
//! equal environment fingerprints, equal options and equal Table 1
//! metadata. A fast subset is synthesized end-to-end from both sources
//! and must produce byte-identical programs; CI runs the same check over
//! all 19 via `solve --all` vs `solve --all --spec-dir benchmarks`.

use rbsyn_core::{Options, Synthesizer};
use rbsyn_suite::{all_benchmarks, benchmarks_from_dir, Benchmark};
use std::path::Path;
use std::time::Duration;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks"))
}

fn corpus() -> Vec<Benchmark> {
    benchmarks_from_dir(corpus_dir()).unwrap_or_else(|e| panic!("corpus must load:\n{e}"))
}

#[test]
fn corpus_covers_the_whole_registry_in_order() {
    let registry = all_benchmarks();
    let files = corpus();
    let registry_ids: Vec<&str> = registry.iter().map(|b| b.id.as_str()).collect();
    let file_ids: Vec<&str> = files.iter().map(|b| b.id.as_str()).collect();
    assert_eq!(
        file_ids, registry_ids,
        "corpus ids must match Table 1 order"
    );
}

#[test]
fn every_corpus_file_lowers_to_its_registry_twin() {
    let registry = all_benchmarks();
    for file_bench in corpus() {
        let reg = registry
            .iter()
            .find(|b| b.id == file_bench.id)
            .unwrap_or_else(|| panic!("{} has no registry twin", file_bench.id));

        // Metadata and Table 1 statistics.
        assert_eq!(file_bench.group, reg.group, "{} group", reg.id);
        assert_eq!(file_bench.name, reg.name, "{} name", reg.id);
        assert_eq!(
            file_bench.expected, reg.expected,
            "{} expected stats",
            reg.id
        );

        // Options (no PartialEq on Options; Debug covers every field).
        assert_eq!(
            format!("{:?}", (file_bench.options)()),
            format!("{:?}", (reg.options)()),
            "{} options",
            reg.id
        );

        // The problem, structurally: Debug includes param types, return
        // type, every setup step / assertion expression, and the Σ
        // constants (class ids included — declaration-order drift fails).
        let (file_env, file_problem) = (file_bench.build)();
        let (reg_env, reg_problem) = (reg.build)();
        assert_eq!(
            format!("{file_problem:#?}"),
            format!("{reg_problem:#?}"),
            "{} problem",
            reg.id
        );

        // The environment: class table fingerprint covers the hierarchy,
        // schemas, method signatures with effects, and precision.
        assert_eq!(
            file_env.table.fingerprint(),
            reg_env.table.fingerprint(),
            "{} environment fingerprint",
            reg.id
        );
        assert_eq!(
            file_env.table.search_visible_count(),
            reg_env.table.search_visible_count(),
            "{} search-visible method count",
            reg.id
        );
    }
}

/// End-to-end: a fast subset synthesized from files must produce programs
/// byte-identical to the registry run (the full 19 run in CI's diff gate).
#[test]
fn fast_subset_synthesizes_identically_from_files() {
    let registry = all_benchmarks();
    for file_bench in corpus() {
        if !["S1", "S2", "S3", "A11"].contains(&file_bench.id.as_str()) {
            continue;
        }
        let reg = registry.iter().find(|b| b.id == file_bench.id).unwrap();
        let solve = |b: &Benchmark| -> String {
            let (env, problem) = (b.build)();
            let opts = Options {
                timeout: Some(Duration::from_secs(60)),
                ..(b.options)()
            };
            let out = Synthesizer::new(env, problem, opts)
                .run()
                .unwrap_or_else(|e| panic!("{} must synthesize: {e}", b.id));
            format!("{}\n(tested {})", out.program, out.stats.search.tested)
        };
        assert_eq!(
            solve(&file_bench),
            solve(reg),
            "{}: file-driven and registry programs must be byte-identical",
            file_bench.id
        );
    }
}
