//! Gates over the file-driven stress corpora that ride alongside the
//! 19-benchmark registry:
//!
//! - `benchmarks/generated/` — the 500 specgen problems: every file must
//!   parse, lower, validate, round-trip through the canonical printer,
//!   and carry a unique id matching the corpus manifest;
//! - `benchmarks/scenarios/` — the two hand-authored effectful scenarios
//!   (checkout with inventory writes; rate-limited messaging fan-out):
//!   hand-written reference programs must pass their specs, and the
//!   synthesizer must solve them end-to-end (release profile);
//! - `crates/suite/tests/fixtures/` — the `solve --spec` exit-code
//!   fixtures: each must produce exactly its contracted failure class.

use rbsyn_core::{exit, SynthError, Synthesizer};
use rbsyn_interp::run_spec;
use rbsyn_lang::builder::{call, cls, false_, hash, if_, seq, true_, var};
use rbsyn_lang::{ClassId, Expr, Program};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(rel)
}

// ── benchmarks/generated/ ───────────────────────────────────────────────

#[test]
fn generated_corpus_matches_manifest_and_loads() {
    let dir = repo_path("benchmarks/generated");
    let manifest =
        std::fs::read_to_string(dir.join("MANIFEST.txt")).expect("generated corpus has a manifest");
    let count: usize = manifest
        .lines()
        .find_map(|l| l.strip_prefix("count "))
        .expect("manifest has a count line")
        .trim()
        .parse()
        .expect("count parses");
    let paths = rbsyn_front::spec_paths(&dir).expect("corpus dir lists");
    assert_eq!(paths.len(), count, "file count must match MANIFEST.txt");

    let mut ids = HashSet::new();
    for path in &paths {
        let origin = path.display().to_string();
        let source = std::fs::read_to_string(path).expect("readable");
        let loaded = rbsyn_front::load_str(&source, &origin)
            .unwrap_or_else(|e| panic!("{origin} must load:\n{e}"));
        loaded
            .lowered
            .problem
            .validate()
            .unwrap_or_else(|e| panic!("{origin}: invalid problem: {e}"));
        assert!(
            ids.insert(loaded.id()),
            "{origin}: duplicate benchmark id {}",
            loaded.id()
        );
        // Canonical-printer round trip: re-printing the parsed file must
        // reproduce the body (everything after the provenance header).
        let body = source
            .split_once("\n\n")
            .map(|(_, rest)| rest)
            .expect("header separated from body by a blank line");
        assert_eq!(
            rbsyn_front::to_rbspec(&loaded.file),
            body,
            "{origin}: not in canonical form"
        );
        // Provenance header present and well-formed.
        assert!(
            source.lines().nth(1).is_some_and(|l| {
                l.starts_with("# specgen: seed=") && l.contains("index=") && l.contains("attempt=")
            }),
            "{origin}: missing specgen provenance header"
        );
    }
}

// ── benchmarks/scenarios/ ───────────────────────────────────────────────

fn load_scenario(name: &str) -> rbsyn_front::LoadedSpec {
    let path = repo_path(&format!("benchmarks/scenarios/{name}"));
    rbsyn_front::load_file(&path).unwrap_or_else(|e| panic!("{name} must load:\n{e}"))
}

fn class_of(env: &rbsyn_interp::InterpEnv, name: &str) -> ClassId {
    env.table
        .hierarchy
        .find(name)
        .unwrap_or_else(|| panic!("class {name} exists"))
}

fn assert_reference_passes(spec: &rbsyn_front::LoadedSpec, params: &[&str], body: Expr) {
    let (env, problem) = spec.build();
    let program = Program::new(problem.name.as_str(), params.iter().copied(), body);
    for s in &problem.specs {
        assert!(
            run_spec(&env, s, &program).passed(),
            "{}: reference solution fails {:?}\n{program}",
            spec.id(),
            s.name
        );
    }
}

#[test]
fn checkout_reference_solution_passes() {
    let spec = load_scenario("checkout.rbspec");
    let (env, _) = spec.build();
    let item = class_of(&env, "Item");
    let order = class_of(&env, "Order");
    // Item.reserve(arg0); Order.create!({item: arg0})
    let body = seq([
        call(cls(item), "reserve", [var("arg0")]),
        call(cls(order), "create!", [hash([("item", var("arg0"))])]),
    ]);
    assert_reference_passes(&spec, &["arg0"], body);
}

#[test]
fn messaging_reference_solution_passes() {
    let spec = load_scenario("messaging.rbspec");
    let (env, _) = spec.build();
    let quota = class_of(&env, "Quota");
    let message = class_of(&env, "Message");
    // if Quota.exists?({user: arg0}) then Message.create!(…); true else false
    let body = if_(
        call(cls(quota), "exists?", [hash([("user", var("arg0"))])]),
        seq([
            call(
                cls(message),
                "create!",
                [hash([("recipient", var("arg1"))])],
            ),
            true_(),
        ]),
        false_(),
    );
    assert_reference_passes(&spec, &["arg0", "arg1"], body);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full synthesis; release-profile test")]
fn scenarios_solve_end_to_end() {
    for name in ["checkout.rbspec", "messaging.rbspec"] {
        let spec = load_scenario(name);
        let (env, problem) = spec.build();
        let opts = spec.lowered.options.clone();
        let result = Synthesizer::new(env, problem, opts)
            .run()
            .unwrap_or_else(|e| panic!("{name} must solve: {e}"));
        // The synthesized program must itself pass every spec.
        let (env2, problem2) = spec.build();
        for s in &problem2.specs {
            assert!(
                run_spec(&env2, s, &result.program).passed(),
                "{name}: synthesized program fails {:?}",
                s.name
            );
        }
    }
}

// ── exit-code fixtures ──────────────────────────────────────────────────

fn fixture(name: &str) -> PathBuf {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures")).join(name)
}

#[test]
fn parse_error_fixture_fails_to_load() {
    let err = rbsyn_front::load_file(&fixture("parse_error.rbspec"))
        .err()
        .expect("parse_error.rbspec must not load");
    assert!(
        err.contains("error:"),
        "diagnostic must be rendered with location: {err}"
    );
}

#[test]
fn no_solution_fixture_maps_to_exit_5() {
    let spec = rbsyn_front::load_file(&fixture("no_solution.rbspec")).expect("loads");
    let (env, problem) = spec.build();
    let opts = spec.lowered.options.clone();
    assert!(
        opts.timeout.is_none(),
        "timeout_secs: 0 must mean no deadline"
    );
    let err = match Synthesizer::new(env, problem, opts).run() {
        Ok(_) => panic!("unsatisfiable asserts must not solve"),
        Err(e) => e,
    };
    assert!(matches!(err, SynthError::NoSolution { .. }), "{err}");
    assert_eq!(exit::for_error(&err), exit::NO_SOLUTION);
}

#[test]
fn timeout_fixture_maps_to_exit_4() {
    let spec = rbsyn_front::load_file(&fixture("timeout.rbspec")).expect("loads");
    let (env, problem) = spec.build();
    let opts = spec.lowered.options.clone();
    assert_eq!(
        opts.timeout.map(|t| t.as_secs()),
        Some(1),
        "fixture pins a 1-second deadline"
    );
    let err = match Synthesizer::new(env, problem, opts).run() {
        Ok(_) => panic!("unsatisfiable asserts must not solve"),
        Err(e) => e,
    };
    assert!(matches!(err, SynthError::Timeout), "{err}");
    assert_eq!(exit::for_error(&err), exit::TIMEOUT);
}
