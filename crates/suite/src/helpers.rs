//! Shared spec-building helpers: a thin Rust mirror of the paper's
//! `define :name do spec … setup … postcond … end` DSL (§4).

use rbsyn_interp::SetupStep;
use rbsyn_lang::builder::call;
use rbsyn_lang::Expr;

/// The conventional name of the postcondition parameter (`updated` in
/// Fig. 1).
pub const RESULT: &str = "updated";

/// `updated = <target>(args…)` setup step.
pub fn target(args: Vec<Expr>) -> SetupStep {
    SetupStep::CallTarget {
        bind: RESULT.into(),
        args,
    }
}

/// Evaluate for side effect (seeding).
pub fn exec(e: Expr) -> SetupStep {
    SetupStep::Exec(e)
}

/// `@name = e` setup binding, visible in the postcondition.
pub fn bind(name: &str, e: Expr) -> SetupStep {
    SetupStep::Bind(name.into(), e)
}

/// The postcondition result variable.
pub fn updated() -> Expr {
    Expr::Var(RESULT.into())
}

/// `a == b` assertion body.
pub fn eq(a: Expr, b: Expr) -> Expr {
    call(a, "==", [b])
}

/// `recv.attr` read.
pub fn attr(recv: Expr, name: &str) -> Expr {
    call(recv, name, [])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_lang::builder::*;

    #[test]
    fn helpers_build_expected_shapes() {
        assert_eq!(eq(updated(), int(1)).compact(), "updated == 1");
        assert_eq!(attr(var("u"), "name").compact(), "u.name");
        match target(vec![int(1)]) {
            SetupStep::CallTarget { bind, args } => {
                assert_eq!(bind.as_str(), RESULT);
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected step {other:?}"),
        }
    }
}
