//! Diaspora benchmarks A9–A12 (§5.1).
//!
//! Diaspora is a federated social network of pods. The benchmarks cover pod
//! health scheduling (the `reload`-in-assertion pathology of §5.2),
//! invitation processing and email confirmation.

use crate::helpers::*;
use crate::registry::{Benchmark, Expected, Group};
use rbsyn_core::{Options, SynthesisProblem};
use rbsyn_interp::{InterpEnv, SetupStep, Spec};
use rbsyn_lang::builder::*;
use rbsyn_lang::{ClassId, Ty, Value};
use rbsyn_stdlib::EnvBuilder;
use std::sync::Arc;

struct DiasporaEnv {
    b: EnvBuilder,
    pod: ClassId,
    user: ClassId,
    invitation_code: ClassId,
}

fn diaspora_env() -> DiasporaEnv {
    let mut b = EnvBuilder::with_stdlib();
    // Pods deliberately have no generated column writers: the paper's A9
    // library adjustment replaces per-field writers with `update!` because
    // the spec's `reload` makes precise writes invisible (§5.2).
    let pod = b.define_model_without_writers(
        "Pod",
        &[
            ("host", Ty::Str),
            ("status", Ty::Str),
            ("checked", Ty::Bool),
        ],
    );
    let user = b.define_model(
        "User",
        &[
            ("username", Ty::Str),
            ("name", Ty::Str),
            ("email", Ty::Str),
            ("unconfirmed_email", Ty::Str),
            ("confirm_token", Ty::Str),
            ("email_confirmed", Ty::Bool),
        ],
    );
    let invitation_code =
        b.define_model("InvitationCode", &[("token", Ty::Str), ("count", Ty::Int)]);
    DiasporaEnv {
        b,
        pod,
        user,
        invitation_code,
    }
}

fn seed_pods(pod: ClassId) -> Vec<SetupStep> {
    let mk = |host: &str, status: &str| {
        exec(call(
            cls(pod),
            "create",
            [hash([("host", str_(host)), ("status", str_(status))])],
        ))
    };
    vec![
        mk("one.example.org", "online"),
        mk("two.example.org", "offline"),
        mk("three.example.org", "online"),
    ]
}

/// A9 `Pod#schedule_check…`: offline pods get scheduled for a health
/// check; online pods are left alone. The assertions read through
/// `reload`, so their read effect is the whole `Pod.*` region.
fn a9() -> (InterpEnv, SynthesisProblem) {
    let d = diaspora_env();
    let pod = d.pod;
    let spec = |title: &str, host: &str, expect_status: &str| {
        let mut steps = seed_pods(pod);
        steps.push(target(vec![str_(host)]));
        Spec::new(
            title,
            steps,
            vec![eq(
                attr(call(updated(), "reload", []), "status"),
                str_(expect_status),
            )],
        )
    };
    let problem = SynthesisProblem::builder("schedule_check")
        .param("arg0", Ty::Str)
        .returns(Ty::Instance(pod))
        .base_consts()
        .constant(Value::str("scheduled"))
        .constant(Value::str("offline"))
        .constant(Value::Class(pod))
        .spec(spec(
            "offline pods are scheduled",
            "two.example.org",
            "scheduled",
        ))
        .spec(spec("online pods stay online", "one.example.org", "online"))
        .spec(spec("other online pods too", "three.example.org", "online"))
        .build();
    (d.b.finish(), problem)
}

/// A10 `User#process_inv…`: accepting an invite consumes the invitation
/// code entirely.
fn a10() -> (InterpEnv, SynthesisProblem) {
    let d = diaspora_env();
    let code = d.invitation_code;
    let steps = vec![
        exec(call(
            cls(code),
            "create",
            [hash([("token", str_("WELCOME")), ("count", int(10))])],
        )),
        exec(call(
            cls(code),
            "create",
            [hash([("token", str_("FRIENDS")), ("count", int(5))])],
        )),
        bind(
            "code",
            call(cls(code), "find_by", [hash([("token", str_("FRIENDS"))])]),
        ),
        target(vec![str_("FRIENDS")]),
    ];
    let spec = Spec::new(
        "processing an invite exhausts the code",
        steps,
        vec![
            eq(updated(), true_()),
            eq(attr(var("code"), "count"), int(0)),
        ],
    );
    let problem = SynthesisProblem::builder("process_invite")
        .param("arg0", Ty::Str)
        .returns(Ty::Bool)
        .base_consts()
        .constant(Value::Class(code))
        .spec(spec)
        .build();
    (d.b.finish(), problem)
}

/// A11 `InvitationCode#use!`: decrement the remaining-use counter.
fn a11() -> (InterpEnv, SynthesisProblem) {
    let d = diaspora_env();
    let code = d.invitation_code;
    let steps = vec![
        exec(call(
            cls(code),
            "create",
            [hash([("token", str_("WELCOME")), ("count", int(10))])],
        )),
        exec(call(
            cls(code),
            "create",
            [hash([("token", str_("FRIENDS")), ("count", int(5))])],
        )),
        target(vec![str_("FRIENDS")]),
    ];
    let spec = Spec::new(
        "using a code decrements its counter",
        steps,
        vec![eq(attr(updated(), "count"), int(4))],
    );
    let problem = SynthesisProblem::builder("use_code")
        .param("arg0", Ty::Str)
        .returns(Ty::Instance(code))
        .base_consts()
        .constant(Value::Class(code))
        .spec(spec)
        .build();
    (d.b.finish(), problem)
}

/// A12 `User#confirm_email`: a valid token confirms the pending address; a
/// wrong token changes nothing; re-confirming an already confirmed account
/// succeeds without touching the email.
fn a12() -> (InterpEnv, SynthesisProblem) {
    let d = diaspora_env();
    let user = d.user;
    let seed = |steps: &mut Vec<SetupStep>| {
        // bob (already confirmed) first, alice (pending) in the middle,
        // carl (confirmed) last — so `User.first`/`User.last` accidents
        // never alias the record a spec targets.
        steps.push(exec(call(
            cls(user),
            "create",
            [call(
                hash([("username", str_("bob")), ("email", str_("bob@x.org"))]),
                "merge",
                [hash([
                    ("confirm_token", str_("tok-bob")),
                    ("email_confirmed", true_()),
                ])],
            )],
        )));
        steps.push(exec(call(
            cls(user),
            "create",
            [call(
                hash([("username", str_("alice")), ("email", str_("old@x.org"))]),
                "merge",
                [call(
                    hash([
                        ("unconfirmed_email", str_("new@x.org")),
                        ("confirm_token", str_("tok-alice")),
                    ]),
                    "merge",
                    [hash([("email_confirmed", false_())])],
                )],
            )],
        )));
        steps.push(exec(call(
            cls(user),
            "create",
            [call(
                hash([("username", str_("carl")), ("email", str_("carl@x.org"))]),
                "merge",
                [hash([
                    ("confirm_token", str_("tok-carl")),
                    ("email_confirmed", true_()),
                ])],
            )],
        )));
        steps.push(bind(
            "alice",
            call(cls(user), "find_by", [hash([("username", str_("alice"))])]),
        ));
        steps.push(bind(
            "bob",
            call(cls(user), "find_by", [hash([("username", str_("bob"))])]),
        ));
    };
    let confirm_spec = |title: &str, token: &str| {
        let mut steps = Vec::new();
        seed(&mut steps);
        steps.push(target(vec![str_(token)]));
        Spec::new(
            title,
            steps,
            vec![
                eq(attr(updated(), "id"), attr(var("alice"), "id")),
                eq(attr(updated(), "email_confirmed"), true_()),
                eq(attr(updated(), "email"), str_("new@x.org")),
                eq(attr(updated(), "unconfirmed_email"), str_("new@x.org")),
            ],
        )
    };
    let reject_spec = |title: &str, token: &str| {
        let mut steps = Vec::new();
        seed(&mut steps);
        steps.push(target(vec![str_(token)]));
        Spec::new(
            title,
            steps,
            vec![
                call(updated(), "nil?", []),
                eq(attr(var("alice"), "email_confirmed"), false_()),
                eq(attr(var("alice"), "email"), str_("old@x.org")),
                eq(attr(var("alice"), "unconfirmed_email"), str_("new@x.org")),
            ],
        )
    };
    let idempotent_spec = |title: &str| {
        let mut steps = Vec::new();
        seed(&mut steps);
        steps.push(target(vec![str_("tok-bob")]));
        Spec::new(
            title,
            steps,
            vec![
                eq(attr(updated(), "id"), attr(var("bob"), "id")),
                eq(attr(updated(), "email_confirmed"), true_()),
                eq(attr(updated(), "email"), str_("bob@x.org")),
                eq(attr(var("alice"), "email"), str_("old@x.org")),
            ],
        )
    };
    // Seven specs across the three behaviours; merged unit tests with the
    // same setup are represented by repeated tokens, as §5.1 describes. The
    // method returns the confirmed user (`nil` on bad tokens), mirroring
    // how the Rails code chains on the record.
    let problem = SynthesisProblem::builder("confirm_email")
        .param("arg0", Ty::Str)
        .returns(Ty::Instance(user))
        .base_consts()
        .constant(Value::Nil)
        .constant(Value::Class(user))
        .spec(confirm_spec(
            "valid tokens confirm the pending email",
            "tok-alice",
        ))
        .spec(reject_spec("wrong tokens change nothing", "tok-wrong"))
        .spec(reject_spec("empty tokens change nothing", ""))
        .spec(idempotent_spec("confirmed accounts stay confirmed"))
        .spec(confirm_spec("valid tokens confirm (rerun)", "tok-alice"))
        .spec(reject_spec("garbage tokens change nothing", "zzz"))
        .spec(idempotent_spec("re-confirming stays true"))
        .build();
    (d.b.finish(), problem)
}

/// The four Diaspora benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            id: "A9".into(),
            group: Group::Diaspora,
            name: "Pod#schedule_…".into(),
            build: Arc::new(a9),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 3,
                asserts_min: 1,
                asserts_max: 1,
                orig_paths: 2,
            },
        },
        Benchmark {
            id: "A10".into(),
            group: Group::Diaspora,
            name: "User#process_inv…".into(),
            build: Arc::new(a10),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 1,
                asserts_min: 2,
                asserts_max: 2,
                orig_paths: 2,
            },
        },
        Benchmark {
            id: "A11".into(),
            group: Group::Diaspora,
            name: "InvitationCode#use!".into(),
            build: Arc::new(a11),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 1,
                asserts_min: 1,
                asserts_max: 1,
                orig_paths: 1,
            },
        },
        Benchmark {
            id: "A12".into(),
            group: Group::Diaspora,
            name: "User#confirm_email".into(),
            build: Arc::new(a12),
            options: Arc::new(|| Options {
                max_size: 40,
                ..Options::default()
            }),
            expected: Expected {
                specs: 7,
                asserts_min: 4,
                asserts_max: 4,
                orig_paths: 2,
            },
        },
    ]
}
