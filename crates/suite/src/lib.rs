//! The 19 evaluation benchmarks of the RbSyn paper (Table 1).
//!
//! Seven *synthetic* benchmarks (S1–S7) exercise individual features of the
//! synthesizer; twelve *app* benchmarks reconstruct methods from Discourse
//! (A1–A4), Gitlab (A5–A8) and Diaspora (A9–A12). We do not have the
//! original apps' code or test databases, so each app benchmark is a
//! faithful reconstruction: the models, library annotations, spec counts,
//! assertion counts and solution shapes match what Table 1 and §5 report,
//! while the concrete column names and seed data are ours (see DESIGN.md's
//! substitution table).
//!
//! Every benchmark is a [`Benchmark`]: a builder producing a fresh
//! environment + problem pair plus the paper's expected statistics, so the
//! experiment harness can regenerate Table 1, Fig. 7 and Fig. 8.

pub mod diaspora;
pub mod discourse;
pub mod gitlab;
pub mod helpers;
pub mod registry;
pub mod synthetic;

pub use registry::{
    all_benchmarks, benchmark, benchmarks_from_dir, Benchmark, BuildFn, Expected, Group, OptionsFn,
};
