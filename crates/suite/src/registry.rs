//! Benchmark registry and metadata.
//!
//! Benchmarks come from two sources that produce the identical
//! [`Benchmark`] shape:
//!
//! * the **Rust registry** — the hand-written builders in
//!   [`crate::synthetic`], [`crate::discourse`], [`crate::gitlab`] and
//!   [`crate::diaspora`] ([`all_benchmarks`]);
//! * **`.rbspec` corpus files** — parsed and lowered by `rbsyn-front`
//!   ([`benchmarks_from_dir`]), the file-driven path `solve --spec-dir`
//!   uses.
//!
//! A CI diff gate keeps the two in lockstep: every corpus file must lower
//! to a problem byte-identical to its Rust twin (see
//! `tests/rbspec_fidelity.rs`).

use rbsyn_core::{Options, SynthesisProblem};
use rbsyn_front::LoadedSpec;
use rbsyn_interp::InterpEnv;
use std::path::Path;
use std::sync::Arc;

/// Benchmark group (Table 1's first column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Group {
    /// Hand-written feature exercises.
    Synthetic,
    /// Discourse reconstructions.
    Discourse,
    /// Gitlab reconstructions.
    Gitlab,
    /// Diaspora reconstructions.
    Diaspora,
}

impl Group {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Group::Synthetic => "Synthetic",
            Group::Discourse => "Discourse",
            Group::Gitlab => "Gitlab",
            Group::Diaspora => "Diaspora",
        }
    }

    /// Parses a group name (the `group:` value of a `.rbspec` metadata
    /// block).
    pub fn parse(s: &str) -> Option<Group> {
        match s {
            "Synthetic" => Some(Group::Synthetic),
            "Discourse" => Some(Group::Discourse),
            "Gitlab" => Some(Group::Gitlab),
            "Diaspora" => Some(Group::Diaspora),
            _ => None,
        }
    }
}

/// The statistics Table 1 reports for a benchmark, used by the harness for
/// the static columns and by tests as a cross-check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Expected {
    /// Number of specs (after merging same-setup unit tests).
    pub specs: usize,
    /// Minimum assertions over all specs.
    pub asserts_min: usize,
    /// Maximum assertions over all specs.
    pub asserts_max: usize,
    /// Paths through the original, human-written method.
    pub orig_paths: usize,
}

/// Builds a fresh environment + problem (environments are cheap to rebuild
/// and must not leak state between runs).
pub type BuildFn = Arc<dyn Fn() -> (InterpEnv, SynthesisProblem) + Send + Sync>;

/// Builds the benchmark's default options (size bounds and the like;
/// guidance, precision and timeout are overridden by the harness).
pub type OptionsFn = Arc<dyn Fn() -> Options + Send + Sync>;

/// One benchmark: metadata plus builders for a fresh run.
#[derive(Clone)]
pub struct Benchmark {
    /// Table 1 id (`S1`…`S7`, `A1`…`A12`) or, for corpus files without
    /// metadata, the file stem.
    pub id: String,
    /// Group.
    pub group: Group,
    /// Human-readable name.
    pub name: String,
    /// Environment + problem factory.
    pub build: BuildFn,
    /// Default-options factory.
    pub options: OptionsFn,
    /// Paper-reported statistics.
    pub expected: Expected,
}

impl Benchmark {
    /// Number of search-visible library methods in this benchmark's
    /// environment (Table 1 "# Lib Meth").
    pub fn lib_method_count(&self) -> usize {
        let (env, _) = (self.build)();
        env.table.search_visible_count()
    }

    /// Builds a benchmark from a loaded `.rbspec` file: id/group/name come
    /// from the metadata block (with file-stem/`Synthetic` fallbacks),
    /// `Expected` spec and assertion counts are derived from the lowered
    /// problem, and the build closure re-lowers the parsed AST so every
    /// run gets a fresh environment, exactly like the Rust builders.
    pub fn from_spec(spec: LoadedSpec) -> Benchmark {
        let id = spec.id();
        let group = spec
            .lowered
            .group
            .as_deref()
            .and_then(Group::parse)
            .unwrap_or(Group::Synthetic);
        let name = spec
            .lowered
            .display_name
            .clone()
            .unwrap_or_else(|| spec.lowered.problem.name.clone());
        let assert_counts: Vec<usize> = spec
            .lowered
            .problem
            .specs
            .iter()
            .map(|s| s.asserts.len())
            .collect();
        let expected = Expected {
            specs: assert_counts.len(),
            asserts_min: assert_counts.iter().copied().min().unwrap_or(0),
            asserts_max: assert_counts.iter().copied().max().unwrap_or(0),
            orig_paths: spec.lowered.orig_paths,
        };
        let options = spec.lowered.options.clone();
        let file = Arc::clone(&spec.file);
        Benchmark {
            id,
            group,
            name,
            build: Arc::new(move || {
                let lowered =
                    rbsyn_front::lower(&file).expect("re-lowering a validated file succeeds");
                (lowered.env, lowered.problem)
            }),
            options: Arc::new(move || options.clone()),
            expected,
        }
    }
}

/// All 19 benchmarks in Table 1 order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = crate::synthetic::benchmarks();
    v.extend(crate::discourse::benchmarks());
    v.extend(crate::gitlab::benchmarks());
    v.extend(crate::diaspora::benchmarks());
    v
}

/// Looks a benchmark up by id (`"S3"`, `"A7"`, …).
pub fn benchmark(id: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.id == id)
}

/// Sort key reproducing Table 1 order for corpus files: `S*` rows first,
/// then `A*`, each numerically; anything else after, alphabetically.
fn table1_order(id: &str) -> (u8, u64, String) {
    let numbered =
        |prefix: char| -> Option<u64> { id.strip_prefix(prefix).and_then(|n| n.parse().ok()) };
    if let Some(n) = numbered('S') {
        (0, n, String::new())
    } else if let Some(n) = numbered('A') {
        (1, n, String::new())
    } else {
        (2, 0, id.to_owned())
    }
}

/// Loads every `.rbspec` file of a corpus directory as [`Benchmark`]s, in
/// Table 1 order — the file-backed twin of [`all_benchmarks`].
///
/// # Errors
///
/// Returns the concatenated rendered diagnostics of every file that fails
/// to parse or lower, or an error for an unreadable/empty directory.
pub fn benchmarks_from_dir(dir: &Path) -> Result<Vec<Benchmark>, String> {
    let specs = rbsyn_front::load_dir(dir)?;
    let mut v: Vec<Benchmark> = specs.into_iter().map(Benchmark::from_spec).collect();
    let mut seen = std::collections::HashSet::new();
    for b in &v {
        if !seen.insert(b.id.clone()) {
            return Err(format!(
                "{}: duplicate benchmark id {:?} in the corpus",
                dir.display(),
                b.id
            ));
        }
    }
    v.sort_by_key(|b| table1_order(&b.id));
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_nineteen() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 19);
        let ids: Vec<&str> = all.iter().map(|b| b.id.as_str()).collect();
        for want in ["S1", "S7", "A1", "A4", "A5", "A8", "A9", "A12"] {
            assert!(ids.contains(&want), "missing {want}");
        }
        // Ids are unique.
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 19);
    }

    #[test]
    fn lookup_by_id() {
        assert!(benchmark("S1").is_some());
        assert!(benchmark("A12").is_some());
        assert!(benchmark("Z9").is_none());
    }

    #[test]
    fn problems_validate_and_match_expected_spec_counts() {
        for b in all_benchmarks() {
            let (_, problem) = (b.build)();
            problem
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", b.id));
            assert_eq!(problem.specs.len(), b.expected.specs, "{} spec count", b.id);
            let counts: Vec<usize> = problem.specs.iter().map(|s| s.asserts.len()).collect();
            let min = counts.iter().copied().min().unwrap_or(0);
            let max = counts.iter().copied().max().unwrap_or(0);
            assert_eq!(min, b.expected.asserts_min, "{} assert min", b.id);
            assert_eq!(max, b.expected.asserts_max, "{} assert max", b.id);
        }
    }

    #[test]
    fn environments_have_substantial_libraries() {
        for b in all_benchmarks() {
            let n = b.lib_method_count();
            assert!(n >= 100, "{}: only {n} search-visible methods", b.id);
        }
    }

    #[test]
    fn groups_round_trip_through_names() {
        for g in [
            Group::Synthetic,
            Group::Discourse,
            Group::Gitlab,
            Group::Diaspora,
        ] {
            assert_eq!(Group::parse(g.label()), Some(g));
        }
        assert_eq!(Group::parse("Unknown"), None);
    }

    #[test]
    fn table1_order_matches_the_paper() {
        let mut ids = vec!["A2", "S1", "A12", "A1", "S7", "custom"];
        ids.sort_by_key(|i| table1_order(i));
        assert_eq!(ids, ["S1", "S7", "A1", "A2", "A12", "custom"]);
    }
}
