//! Benchmark registry and metadata.

use rbsyn_core::{Options, SynthesisProblem};
use rbsyn_interp::InterpEnv;

/// Benchmark group (Table 1's first column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Group {
    /// Hand-written feature exercises.
    Synthetic,
    /// Discourse reconstructions.
    Discourse,
    /// Gitlab reconstructions.
    Gitlab,
    /// Diaspora reconstructions.
    Diaspora,
}

impl Group {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Group::Synthetic => "Synthetic",
            Group::Discourse => "Discourse",
            Group::Gitlab => "Gitlab",
            Group::Diaspora => "Diaspora",
        }
    }
}

/// The statistics Table 1 reports for a benchmark, used by the harness for
/// the static columns and by tests as a cross-check.
#[derive(Clone, Copy, Debug)]
pub struct Expected {
    /// Number of specs (after merging same-setup unit tests).
    pub specs: usize,
    /// Minimum assertions over all specs.
    pub asserts_min: usize,
    /// Maximum assertions over all specs.
    pub asserts_max: usize,
    /// Paths through the original, human-written method.
    pub orig_paths: usize,
}

/// One benchmark: metadata plus a builder for a fresh run.
pub struct Benchmark {
    /// Table 1 id (`S1`…`S7`, `A1`…`A12`).
    pub id: &'static str,
    /// Group.
    pub group: Group,
    /// Human-readable name.
    pub name: &'static str,
    /// Builds a fresh environment + problem (environments are cheap to
    /// rebuild and must not leak state between runs).
    pub build: fn() -> (InterpEnv, SynthesisProblem),
    /// Default options tuned for the benchmark (size bounds). Guidance,
    /// precision and timeout are overridden by the harness.
    pub options: fn() -> Options,
    /// Paper-reported statistics.
    pub expected: Expected,
}

impl Benchmark {
    /// Number of search-visible library methods in this benchmark's
    /// environment (Table 1 "# Lib Meth").
    pub fn lib_method_count(&self) -> usize {
        let (env, _) = (self.build)();
        env.table.search_visible_count()
    }
}

/// All 19 benchmarks in Table 1 order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = crate::synthetic::benchmarks();
    v.extend(crate::discourse::benchmarks());
    v.extend(crate::gitlab::benchmarks());
    v.extend(crate::diaspora::benchmarks());
    v
}

/// Looks a benchmark up by id (`"S3"`, `"A7"`, …).
pub fn benchmark(id: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_nineteen() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 19);
        let ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        for want in ["S1", "S7", "A1", "A4", "A5", "A8", "A9", "A12"] {
            assert!(ids.contains(&want), "missing {want}");
        }
        // Ids are unique.
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 19);
    }

    #[test]
    fn lookup_by_id() {
        assert!(benchmark("S1").is_some());
        assert!(benchmark("A12").is_some());
        assert!(benchmark("Z9").is_none());
    }

    #[test]
    fn problems_validate_and_match_expected_spec_counts() {
        for b in all_benchmarks() {
            let (_, problem) = (b.build)();
            problem
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", b.id));
            assert_eq!(problem.specs.len(), b.expected.specs, "{} spec count", b.id);
            let counts: Vec<usize> = problem.specs.iter().map(|s| s.asserts.len()).collect();
            let min = counts.iter().copied().min().unwrap_or(0);
            let max = counts.iter().copied().max().unwrap_or(0);
            assert_eq!(min, b.expected.asserts_min, "{} assert min", b.id);
            assert_eq!(max, b.expected.asserts_max, "{} assert max", b.id);
        }
    }

    #[test]
    fn environments_have_substantial_libraries() {
        for b in all_benchmarks() {
            let n = b.lib_method_count();
            assert!(n >= 100, "{}: only {n} search-visible methods", b.id);
        }
    }
}
