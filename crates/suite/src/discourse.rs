//! Discourse benchmarks A1–A4 (§5.1).
//!
//! Discourse is a Rails discussion platform; the benchmarks are effectful
//! methods on its `User` model plus site-setting globals. We reconstruct
//! the model with the columns those methods touch and derive specs from the
//! behaviours the paper describes (account activation, unstaging
//! placeholder accounts, clearing global notices, site-setting checks).

use crate::helpers::*;
use crate::registry::{Benchmark, Expected, Group};
use rbsyn_core::{Options, SynthesisProblem};
use rbsyn_interp::{InterpEnv, SetupStep, Spec};
use rbsyn_lang::builder::*;
use rbsyn_lang::{ClassId, Expr, Ty, Value};
use rbsyn_stdlib::EnvBuilder;
use std::sync::Arc;

/// The Discourse environment: a `User` model and the `SiteSetting` global.
fn discourse_env() -> (EnvBuilder, ClassId, ClassId) {
    let mut b = EnvBuilder::with_stdlib();
    let user = b.define_model(
        "User",
        &[
            ("username", Ty::Str),
            ("name", Ty::Str),
            ("active", Ty::Bool),
            ("admin", Ty::Bool),
            ("moderator", Ty::Bool),
            ("staged", Ty::Bool),
            ("email_confirmed", Ty::Bool),
        ],
    );
    let settings = b.define_global(
        "SiteSetting",
        &[
            ("global_notice", Ty::Str),
            ("moderator_notice", Ty::Str),
            ("admin_notice", Ty::Str),
        ],
    );
    (b, user, settings)
}

/// Seeds the standard Discourse users: an admin, a moderator, a regular
/// member and a staged placeholder account.
fn seed_users(user: ClassId) -> Vec<SetupStep> {
    let mk = |username: &str, name: &str, fields: Expr| {
        exec(call(
            cls(user),
            "create",
            [call(
                hash([("username", str_(username)), ("name", str_(name))]),
                "merge",
                [fields],
            )],
        ))
    };
    vec![
        mk(
            "alice",
            "Alice Admin",
            hash([("admin", true_()), ("active", true_())]),
        ),
        mk(
            "bob",
            "Bob Mod",
            hash([("moderator", true_()), ("active", true_())]),
        ),
        mk("carol", "Carol Member", hash([("active", true_())])),
        mk(
            "pending",
            "Pending Person",
            hash([("staged", true_()), ("active", false_())]),
        ),
        // A trailing user so degenerate `User.last`-based candidates never
        // alias the interesting rows (the paper's seed_db plays the same
        // role, §2.1).
        mk("zoe", "Zoe Last", hash([("active", true_())])),
    ]
}

fn seed_notices(settings: ClassId) -> Vec<SetupStep> {
    vec![
        exec(call(
            cls(settings),
            "global_notice=",
            [str_("maintenance tonight")],
        )),
        exec(call(
            cls(settings),
            "moderator_notice=",
            [str_("queue is long")],
        )),
        exec(call(
            cls(settings),
            "admin_notice=",
            [str_("disk almost full")],
        )),
    ]
}

/// A1 `User#clear_global_notice…`: admins clear the global notice,
/// moderators clear the moderator notice, everyone else changes nothing.
fn a1() -> (InterpEnv, SynthesisProblem) {
    let (b, user, settings) = discourse_env();
    let spec = |title: &str, username: &str, asserts: Vec<Expr>| {
        let mut steps = seed_users(user);
        steps.extend(seed_notices(settings));
        steps.push(target(vec![str_(username)]));
        Spec::new(title, steps, asserts)
    };
    let problem = SynthesisProblem::builder("clear_notice")
        .param("arg0", Ty::Str)
        .returns(Ty::Bool)
        .base_consts()
        .constant(Value::Class(user))
        .constant(Value::Class(settings))
        .spec(spec(
            "admins clear the global notice",
            "alice",
            vec![
                eq(updated(), true_()),
                eq(call(cls(settings), "global_notice", []), str_("")),
            ],
        ))
        .spec(spec(
            "moderators clear the moderator notice",
            "bob",
            vec![
                eq(updated(), true_()),
                eq(call(cls(settings), "moderator_notice", []), str_("")),
            ],
        ))
        .spec(spec(
            "members clear nothing",
            "carol",
            vec![
                eq(updated(), false_()),
                eq(
                    call(cls(settings), "global_notice", []),
                    str_("maintenance tonight"),
                ),
            ],
        ))
        .build();
    (b.finish(), problem)
}

/// A2 `User#activate`: flips `active` and confirms the email for a known
/// user (returning the activated record, as the Rails method chains do);
/// answers `nil` for unknown users.
fn a2() -> (InterpEnv, SynthesisProblem) {
    let (b, user, _) = discourse_env();
    let mut steps1 = seed_users(user);
    // A visitor with the same null-activation shape *before* the target
    // keeps `find_by(active: nil)`-style accidents from aliasing it…
    steps1.push(exec(call(
        cls(user),
        "create",
        [hash([
            ("username", str_("visitor")),
            ("name", str_("Vis Tor")),
        ])],
    )));
    // …the account to activate: inactive, unconfirmed…
    steps1.push(exec(call(
        cls(user),
        "create",
        [hash([
            ("username", str_("newbie")),
            ("name", str_("New B")),
        ])],
    )));
    // …and another signup after it keeps `User.last` from aliasing it.
    steps1.push(exec(call(
        cls(user),
        "create",
        [hash([
            ("username", str_("walkin")),
            ("name", str_("Walk In")),
        ])],
    )));
    steps1.push(bind(
        "user",
        call(cls(user), "find_by", [hash([("username", str_("newbie"))])]),
    ));
    steps1.push(target(vec![str_("newbie")]));
    let spec1 = Spec::new(
        "activation enables the account and confirms email",
        steps1,
        vec![
            eq(attr(updated(), "id"), attr(var("user"), "id")),
            eq(attr(updated(), "active"), true_()),
            eq(attr(updated(), "email_confirmed"), true_()),
            eq(attr(updated(), "staged"), Expr::Lit(Value::Nil)),
        ],
    );
    // "stuart" matches "newbie" in length and case so string-shape guards
    // (length parity etc.) cannot separate the specs.
    let mut steps2 = seed_users(user);
    steps2.push(target(vec![str_("stuart")]));
    let spec2 = Spec::new(
        "unknown users cannot be activated",
        steps2,
        vec![call(updated(), "nil?", [])],
    );
    let problem = SynthesisProblem::builder("activate")
        .param("arg0", Ty::Str)
        .returns(Ty::Instance(user))
        .base_consts()
        .constant(Value::Nil)
        .constant(Value::Class(user))
        .spec(spec1)
        .spec(spec2)
        .build();
    (b.finish(), problem)
}

/// A3 `User#unstage`: a staged placeholder account becomes a real one; for
/// anyone else the method answers `nil` — the benchmark the paper calls out
/// as slow because `nil` fills every typed hole (§5.2).
fn a3() -> (InterpEnv, SynthesisProblem) {
    let (b, user, _) = discourse_env();
    let mut steps1 = seed_users(user);
    steps1.push(bind(
        "user",
        call(
            cls(user),
            "find_by",
            [hash([("username", str_("pending"))])],
        ),
    ));
    steps1.push(target(vec![str_("pending")]));
    let spec1 = Spec::new(
        "staged accounts are unstaged",
        steps1,
        vec![
            eq(attr(updated(), "id"), attr(var("user"), "id")),
            eq(attr(updated(), "staged"), false_()),
            eq(attr(updated(), "username"), str_("pending")),
            eq(attr(updated(), "name"), str_("Pending Person")),
            eq(attr(updated(), "active"), false_()),
        ],
    );
    let spec_nil = |title: &str, username: &str| {
        let mut steps = seed_users(user);
        steps.push(target(vec![str_(username)]));
        Spec::new(title, steps, vec![call(updated(), "nil?", [])])
    };
    let problem = SynthesisProblem::builder("unstage")
        .param("arg0", Ty::Str)
        .returns(Ty::Instance(user))
        .base_consts()
        .constant(Value::Nil)
        .constant(Value::Class(user))
        .spec(spec1)
        .spec(spec_nil("unstaging a regular account is nil", "carol"))
        .spec(spec_nil("unstaging an unknown account is nil", "zed"))
        .build();
    (b.finish(), problem)
}

/// A4 `User#check_site…`: which notice applies to a visitor — admins see
/// the admin notice, members the global notice, strangers nothing.
fn a4() -> (InterpEnv, SynthesisProblem) {
    let (b, user, settings) = discourse_env();
    let spec = |title: &str, username: &str, expect: &str| {
        let mut steps = seed_users(user);
        steps.extend(seed_notices(settings));
        // A second admin so the admin condition cannot overfit one row.
        steps.push(exec(call(
            cls(user),
            "create",
            [hash([
                ("username", str_("dora")),
                ("admin", true_()),
                ("active", true_()),
            ])],
        )));
        steps.push(target(vec![str_(username)]));
        Spec::new(title, steps, vec![eq(updated(), str_(expect))])
    };
    let problem = SynthesisProblem::builder("site_notice_for")
        .param("arg0", Ty::Str)
        .returns(Ty::Str)
        .base_consts()
        .constant(Value::Class(user))
        .constant(Value::Class(settings))
        .spec(spec(
            "admins see the admin notice",
            "alice",
            "disk almost full",
        ))
        .spec(spec("second admin sees it too", "dora", "disk almost full"))
        .spec(spec(
            "members see the global notice",
            "carol",
            "maintenance tonight",
        ))
        .spec(spec(
            "moderators see the global notice",
            "bob",
            "maintenance tonight",
        ))
        .spec(spec("strangers see nothing", "zed", ""))
        .build();
    (b.finish(), problem)
}

/// The four Discourse benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            id: "A1".into(),
            group: Group::Discourse,
            name: "User#clear_glob…".into(),
            build: Arc::new(a1),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 3,
                asserts_min: 2,
                asserts_max: 2,
                orig_paths: 3,
            },
        },
        Benchmark {
            id: "A2".into(),
            group: Group::Discourse,
            name: "User#activate".into(),
            build: Arc::new(a2),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 2,
                asserts_min: 1,
                asserts_max: 4,
                orig_paths: 2,
            },
        },
        Benchmark {
            id: "A3".into(),
            group: Group::Discourse,
            name: "User#unstage".into(),
            build: Arc::new(a3),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 3,
                asserts_min: 1,
                asserts_max: 5,
                orig_paths: 2,
            },
        },
        Benchmark {
            id: "A4".into(),
            group: Group::Discourse,
            name: "User#check_site…".into(),
            build: Arc::new(a4),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 5,
                asserts_min: 1,
                asserts_max: 1,
                orig_paths: 2,
            },
        },
    ]
}
