//! Synthetic benchmarks S1–S7 (§5.1): minimal examples exercising each
//! feature of the synthesizer over the overview's blog schema —
//! `User {name, username}`, `Post {author, title, slug}` (Fig. 1).

use crate::helpers::*;
use crate::registry::{Benchmark, Expected, Group};
use rbsyn_core::{Options, SynthesisProblem};
use rbsyn_interp::{InterpEnv, Spec};
use rbsyn_lang::builder::*;
use rbsyn_lang::types::HashField;
use rbsyn_lang::{ClassId, FiniteHash, Ty, Value};
use rbsyn_stdlib::EnvBuilder;
use std::sync::Arc;

/// The overview blog environment: `User` and `Post` models.
pub fn blog_env() -> (EnvBuilder, ClassId, ClassId) {
    let mut b = EnvBuilder::with_stdlib();
    let user = b.define_model("User", &[("name", Ty::Str), ("username", Ty::Str)]);
    let post = b.define_model(
        "Post",
        &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
    );
    (b, user, post)
}

/// Seeds the three blog users and a post each (the `seed_db` of Fig. 1).
fn seed_steps(user: ClassId, post: ClassId) -> Vec<rbsyn_interp::SetupStep> {
    let mk_user = |name: &str, username: &str| {
        exec(call(
            cls(user),
            "create",
            [hash([("name", str_(name)), ("username", str_(username))])],
        ))
    };
    let mk_post = |author: &str, slug: &str, title: &str| {
        exec(call(
            cls(post),
            "create",
            [hash([
                ("author", str_(author)),
                ("slug", str_(slug)),
                ("title", str_(title)),
            ])],
        ))
    };
    vec![
        mk_user("Alice Doe", "alice"),
        mk_user("Bob Roe", "bob"),
        mk_user("Carol Poe", "carol"),
        mk_post("alice", "alices-post", "On Synthesis"),
        mk_post("bob", "bobs-post", "On Effects"),
        mk_post("carol", "carols-post", "On Types"),
    ]
}

fn s1() -> (InterpEnv, SynthesisProblem) {
    let (b, _, _) = blog_env();
    let problem = SynthesisProblem::builder("echo")
        .param("arg0", Ty::Str)
        .returns(Ty::Str)
        .base_consts()
        .spec(Spec::new(
            "returns its argument",
            vec![target(vec![str_("hello")])],
            vec![eq(updated(), str_("hello"))],
        ))
        .build();
    (b.finish(), problem)
}

fn s2() -> (InterpEnv, SynthesisProblem) {
    let (b, _, _) = blog_env();
    let problem = SynthesisProblem::builder("always_false")
        .returns(Ty::Bool)
        .base_consts()
        .spec(Spec::new(
            "returns false",
            vec![target(vec![])],
            vec![eq(updated(), false_())],
        ))
        .build();
    (b.finish(), problem)
}

fn s3() -> (InterpEnv, SynthesisProblem) {
    let (b, user, post) = blog_env();
    let spec = |username: &str, expect: &str| {
        let mut steps = seed_steps(user, post);
        steps.push(target(vec![str_(username)]));
        Spec::new(
            "looks a display name up by username",
            steps,
            vec![eq(updated(), str_(expect))],
        )
    };
    let problem = SynthesisProblem::builder("display_name")
        .param("arg0", Ty::Str)
        .returns(Ty::Str)
        .base_consts()
        .constant(Value::Class(user))
        .spec(spec("bob", "Bob Roe"))
        .spec(spec("carol", "Carol Poe"))
        .build();
    (b.finish(), problem)
}

fn s4() -> (InterpEnv, SynthesisProblem) {
    let (b, user, post) = blog_env();
    let spec = |username: &str, expect: bool| {
        let mut steps = seed_steps(user, post);
        steps.push(target(vec![str_(username)]));
        Spec::new(
            "tests whether a username is registered",
            steps,
            vec![eq(updated(), Expr::from_bool(expect))],
        )
    };
    // "carol" and "dylan" agree on length, case and non-palindromicity, so
    // pure string hacks (`arg0.length.odd?`, `arg0 == arg0.reverse`, …)
    // cannot separate the specs — only a real query can.
    let problem = SynthesisProblem::builder("user_exists")
        .param("arg0", Ty::Str)
        .returns(Ty::Bool)
        .base_consts()
        .constant(Value::Class(user))
        .spec(spec("carol", true))
        .spec(spec("dylan", false))
        .build();
    (b.finish(), problem)
}

fn s5() -> (InterpEnv, SynthesisProblem) {
    let (b, user, post) = blog_env();
    let spec = |username: &str, expect: &str| {
        let mut steps = seed_steps(user, post);
        steps.push(target(vec![str_(username)]));
        Spec::new(
            "display name, or empty for unknown users",
            steps,
            vec![eq(updated(), str_(expect))],
        )
    };
    let problem = SynthesisProblem::builder("display_name_or_default")
        .param("arg0", Ty::Str)
        .returns(Ty::Str)
        .base_consts()
        .constant(Value::Class(user))
        .spec(spec("bob", "Bob Roe"))
        .spec(spec("carol", "Carol Poe"))
        .spec(spec("dave", ""))
        .build();
    (b.finish(), problem)
}

/// The update hash parameter type of the overview problem (Fig. 1):
/// `{author: ?Str, title: ?Str, slug: ?Str}`.
fn update_hash_ty() -> Ty {
    Ty::FiniteHash(FiniteHash::new(
        ["author", "title", "slug"]
            .into_iter()
            .map(|k| HashField {
                key: k.into(),
                ty: Ty::Str,
                optional: true,
            })
            .collect(),
    ))
}

fn s6() -> (InterpEnv, SynthesisProblem) {
    let (b, user, post) = blog_env();
    // The Fig. 1 post under synthesis, created on top of the seeds — plus
    // one more post *after* it, so degenerate `Post.last` candidates never
    // alias it (the same role seeding plays against `Post.first` in C4).
    let the_post = |steps: &mut Vec<rbsyn_interp::SetupStep>| {
        steps.push(bind(
            "post",
            call(
                cls(post),
                "create",
                [hash([
                    ("author", str_("author")),
                    ("slug", str_("hello-world")),
                    ("title", str_("Hello World")),
                ])],
            ),
        ));
        steps.push(exec(call(
            cls(post),
            "create",
            [hash([
                ("author", str_("carol")),
                ("slug", str_("late-post")),
                ("title", str_("Late Post")),
            ])],
        )));
    };
    let unchanged_id_author = |mut asserts: Vec<Expr>| -> Vec<Expr> {
        let mut v = vec![
            eq(attr(updated(), "id"), attr(var("post"), "id")),
            eq(attr(updated(), "author"), str_("author")),
        ];
        v.append(&mut asserts);
        v
    };

    // Spec 1 (Fig. 1): the author can change titles.
    let mut steps1 = seed_steps(user, post);
    the_post(&mut steps1);
    steps1.push(target(vec![
        str_("author"),
        str_("hello-world"),
        hash([
            ("author", str_("dummy")),
            ("title", str_("Foo Bar")),
            ("slug", str_("foobar")),
        ]),
    ]));
    let spec1 = Spec::new(
        "author can only change titles",
        steps1,
        unchanged_id_author(vec![
            eq(attr(updated(), "title"), str_("Foo Bar")),
            eq(attr(updated(), "slug"), str_("hello-world")),
        ]),
    );

    // Spec 2 (Fig. 1): other users cannot change anything. "murphy"
    // matches "author" in length so string-shape guards cannot separate
    // the specs.
    let mut steps2 = seed_steps(user, post);
    the_post(&mut steps2);
    steps2.push(target(vec![
        str_("murphy"),
        str_("hello-world"),
        hash([
            ("author", str_("murphy")),
            ("title", str_("Foo Bar")),
            ("slug", str_("foobar")),
        ]),
    ]));
    let spec2 = Spec::new(
        "other users cannot change anything",
        steps2,
        unchanged_id_author(vec![
            eq(attr(updated(), "title"), str_("Hello World")),
            eq(attr(updated(), "slug"), str_("hello-world")),
        ]),
    );

    // Spec 3 (the "ext" of S6): an update hash without a title changes the
    // slug instead. The hash has two keys so hash-size tricks cannot
    // separate it from spec 1's three keys with a smaller program than the
    // real `arg2[:title]` check.
    let mut steps3 = seed_steps(user, post);
    the_post(&mut steps3);
    steps3.push(target(vec![
        str_("author"),
        str_("hello-world"),
        hash([("author", str_("author")), ("slug", str_("fresh-slug"))]),
    ]));
    let spec3 = Spec::new(
        "author can change slugs when no title is given",
        steps3,
        unchanged_id_author(vec![
            eq(attr(updated(), "title"), str_("Hello World")),
            eq(attr(updated(), "slug"), str_("fresh-slug")),
        ]),
    );

    let problem = SynthesisProblem::builder("update_post")
        .param("arg0", Ty::Str)
        .param("arg1", Ty::Str)
        .param("arg2", update_hash_ty())
        .returns(Ty::Instance(post))
        .constant(Value::Class(user))
        .constant(Value::Class(post))
        .spec(spec1)
        .spec(spec2)
        .spec(spec3)
        .build();
    (b.finish(), problem)
}

fn s7() -> (InterpEnv, SynthesisProblem) {
    let (b, user, post) = blog_env();
    let spec = |username: &str, expect: bool| {
        let mut steps = seed_steps(user, post);
        // An extra user with no posts distinguishes "registered" from
        // "has published".
        steps.push(exec(call(
            cls(user),
            "create",
            [hash([
                ("name", str_("Dan No-Posts")),
                ("username", str_("dan")),
            ])],
        )));
        steps.push(target(vec![str_(username)]));
        Spec::new(
            "has the user published anything?",
            steps,
            vec![eq(updated(), Expr::from_bool(expect))],
        )
    };
    let problem = SynthesisProblem::builder("published?")
        .param("arg0", Ty::Str)
        .returns(Ty::Bool)
        .base_consts()
        .constant(Value::Class(user))
        .constant(Value::Class(post))
        .spec(spec("bob", true))
        .spec(spec("dan", false))
        .spec(spec("eve", false))
        .build();
    (b.finish(), problem)
}

/// Extension trait bridging `bool` to guard expressions in specs.
trait FromBool {
    fn from_bool(b: bool) -> Expr;
}

use rbsyn_lang::Expr;

impl FromBool for Expr {
    fn from_bool(b: bool) -> Expr {
        Expr::Lit(Value::Bool(b))
    }
}

/// The seven synthetic benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            id: "S1".into(),
            group: Group::Synthetic,
            name: "lvar".into(),
            build: Arc::new(s1),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 1,
                asserts_min: 1,
                asserts_max: 1,
                orig_paths: 1,
            },
        },
        Benchmark {
            id: "S2".into(),
            group: Group::Synthetic,
            name: "false".into(),
            build: Arc::new(s2),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 1,
                asserts_min: 1,
                asserts_max: 1,
                orig_paths: 1,
            },
        },
        Benchmark {
            id: "S3".into(),
            group: Group::Synthetic,
            name: "method chains".into(),
            build: Arc::new(s3),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 2,
                asserts_min: 1,
                asserts_max: 1,
                orig_paths: 1,
            },
        },
        Benchmark {
            id: "S4".into(),
            group: Group::Synthetic,
            name: "user exists".into(),
            build: Arc::new(s4),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 2,
                asserts_min: 1,
                asserts_max: 1,
                orig_paths: 1,
            },
        },
        Benchmark {
            id: "S5".into(),
            group: Group::Synthetic,
            name: "branching".into(),
            build: Arc::new(s5),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 3,
                asserts_min: 1,
                asserts_max: 1,
                orig_paths: 2,
            },
        },
        Benchmark {
            id: "S6".into(),
            group: Group::Synthetic,
            name: "overview (ext)".into(),
            build: Arc::new(s6),
            options: Arc::new(|| Options {
                max_size: 48,
                ..Options::default()
            }),
            expected: Expected {
                specs: 3,
                asserts_min: 4,
                asserts_max: 4,
                orig_paths: 3,
            },
        },
        Benchmark {
            id: "S7".into(),
            group: Group::Synthetic,
            name: "fold branches".into(),
            build: Arc::new(s7),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 3,
                asserts_min: 1,
                asserts_max: 1,
                orig_paths: 1,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_core::Synthesizer;

    fn solve(
        build: fn() -> (InterpEnv, SynthesisProblem),
        opts: Options,
    ) -> rbsyn_core::SynthResult {
        let (env, problem) = build();
        Synthesizer::new(env, problem, opts)
            .run()
            .expect("benchmark must synthesize")
    }

    #[test]
    fn s1_synthesizes_the_parameter() {
        let out = solve(s1, Options::default());
        assert_eq!(out.program.body.compact(), "arg0");
        assert_eq!(out.stats.solution_paths, 1);
    }

    #[test]
    fn s2_synthesizes_false() {
        let out = solve(s2, Options::default());
        assert_eq!(out.program.body.compact(), "false");
    }

    #[test]
    fn s3_synthesizes_a_method_chain() {
        let out = solve(s3, Options::default());
        let s = out.program.body.compact();
        assert!(s.contains("username: arg0"), "got {s}");
        assert!(s.ends_with(".name"), "got {s}");
        assert_eq!(out.stats.solution_paths, 1);
    }

    #[test]
    fn s4_folds_to_a_single_query() {
        let out = solve(s4, Options::default());
        let s = out.program.body.compact();
        assert_eq!(
            out.stats.solution_paths, 1,
            "rules 4/5 must fold branches: {s}"
        );
        assert!(s.contains("User."), "got {s}");
    }

    #[test]
    fn s5_synthesizes_a_branch() {
        let out = solve(s5, Options::default());
        assert_eq!(out.stats.solution_paths, 2, "got {}", out.program);
    }

    #[test]
    fn s7_folds_three_specs_into_one_line() {
        let out = solve(s7, Options::default());
        assert_eq!(out.stats.solution_paths, 1, "got {}", out.program);
        assert!(out.program.body.compact().contains("Post."));
    }
}
