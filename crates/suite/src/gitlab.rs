//! Gitlab benchmarks A5–A8 (§5.1).
//!
//! Gitlab is a Rails DevOps platform; the benchmarks cover building
//! discussions, disabling two-factor authentication, and the issue state
//! machine. The paper notes RbSyn synthesizes `Issue#close`/`#reopen`
//! without the `state_machine` gem — ours likewise flip the state columns
//! directly.

use crate::helpers::*;
use crate::registry::{Benchmark, Expected, Group};
use rbsyn_core::{Options, SynthesisProblem};
use rbsyn_interp::{InterpEnv, SetupStep, Spec};
use rbsyn_lang::builder::*;
use rbsyn_lang::{ClassId, Ty, Value};
use rbsyn_stdlib::EnvBuilder;
use std::sync::Arc;

struct GitlabEnv {
    b: EnvBuilder,
    user: ClassId,
    issue: ClassId,
    discussion: ClassId,
}

fn gitlab_env() -> GitlabEnv {
    let mut b = EnvBuilder::with_stdlib();
    let user = b.define_model(
        "User",
        &[
            ("username", Ty::Str),
            ("name", Ty::Str),
            ("otp_required", Ty::Bool),
            ("otp_secret", Ty::Str),
            ("otp_backup_codes", Ty::Str),
            ("otp_grace_started", Ty::Bool),
            ("two_factor_enabled", Ty::Bool),
        ],
    );
    let issue = b.define_model(
        "Issue",
        &[
            ("title", Ty::Str),
            ("state", Ty::Str),
            ("author", Ty::Str),
            ("confidential", Ty::Bool),
        ],
    );
    let discussion = b.define_model(
        "Discussion",
        &[
            ("noteable_id", Ty::Int),
            ("author", Ty::Str),
            ("resolved", Ty::Bool),
        ],
    );
    GitlabEnv {
        b,
        user,
        issue,
        discussion,
    }
}

fn seed_issues(issue: ClassId) -> Vec<SetupStep> {
    let mk = |title: &str, state: &str, author: &str| {
        exec(call(
            cls(issue),
            "create",
            [call(
                hash([("title", str_(title)), ("state", str_(state))]),
                "merge",
                [hash([("author", str_(author))])],
            )],
        ))
    };
    vec![
        mk("Crash on save", "opened", "alice"),
        mk("Slow search", "opened", "bob"),
        mk("Broken link", "opened", "carol"),
    ]
}

/// A5 `Discussion#build`: construct a discussion record for a noteable.
fn a5() -> (InterpEnv, SynthesisProblem) {
    let g = gitlab_env();
    let discussion = g.discussion;
    let spec = Spec::new(
        "builds a discussion on the noteable",
        vec![target(vec![int(42), str_("dev")])],
        vec![
            eq(attr(updated(), "noteable_id"), int(42)),
            eq(attr(updated(), "author"), str_("dev")),
            call(attr(updated(), "resolved"), "nil?", []),
            eq(call(cls(discussion), "count", []), int(1)),
        ],
    );
    let problem = SynthesisProblem::builder("build_discussion")
        .param("arg0", Ty::Int)
        .param("arg1", Ty::Str)
        .returns(Ty::Instance(discussion))
        .base_consts()
        .constant(Value::Class(discussion))
        .spec(spec)
        .build();
    (g.b.finish(), problem)
}

/// A6 `User#disable_two_factor!`: reset every OTP column of a user.
fn a6() -> (InterpEnv, SynthesisProblem) {
    let g = gitlab_env();
    let user = g.user;
    let mut steps = vec![
        exec(call(
            cls(user),
            "create",
            [hash([("username", str_("ops")), ("name", str_("Ops Owl"))])],
        )),
        exec(call(
            cls(user),
            "create",
            [call(
                hash([("username", str_("alice")), ("name", str_("Alice"))]),
                "merge",
                [call(
                    hash([("otp_required", true_()), ("otp_secret", str_("s3cr3t"))]),
                    "merge",
                    [hash([
                        ("otp_backup_codes", str_("aa bb cc")),
                        ("otp_grace_started", true_()),
                    ])],
                )],
            )],
        )),
        exec(call(
            call(cls(user), "find_by", [hash([("username", str_("alice"))])]),
            "two_factor_enabled=",
            [true_()],
        )),
        bind(
            "user",
            call(cls(user), "find_by", [hash([("username", str_("alice"))])]),
        ),
        target(vec![str_("alice")]),
    ];
    let steps = {
        steps.shrink_to_fit();
        steps
    };
    let spec = Spec::new(
        "two-factor state is fully reset",
        steps,
        vec![
            eq(attr(updated(), "id"), attr(var("user"), "id")),
            eq(attr(updated(), "username"), str_("alice")),
            eq(attr(updated(), "otp_required"), false_()),
            eq(attr(updated(), "otp_secret"), str_("")),
            eq(attr(updated(), "otp_backup_codes"), str_("")),
            eq(attr(updated(), "otp_grace_started"), false_()),
            eq(attr(updated(), "two_factor_enabled"), false_()),
            eq(attr(updated(), "name"), str_("Alice")),
            eq(call(cls(user), "count", []), int(2)),
            eq(
                call(
                    cls(user),
                    "exists?",
                    [hash([("two_factor_enabled", true_())])],
                ),
                false_(),
            ),
        ],
    );
    let problem = SynthesisProblem::builder("disable_two_factor")
        .param("arg0", Ty::Str)
        .returns(Ty::Instance(user))
        .base_consts()
        .constant(Value::Class(user))
        .spec(spec)
        .build();
    (g.b.finish(), problem)
}

/// A7 `Issue#close`: flip the state machine column to closed.
fn a7() -> (InterpEnv, SynthesisProblem) {
    let g = gitlab_env();
    let issue = g.issue;
    let mut steps = seed_issues(issue);
    steps.push(bind(
        "issue",
        call(
            cls(issue),
            "find_by",
            [hash([("title", str_("Slow search"))])],
        ),
    ));
    steps.push(target(vec![str_("Slow search")]));
    let spec = Spec::new(
        "closing flips the state",
        steps,
        vec![
            eq(attr(updated(), "id"), attr(var("issue"), "id")),
            eq(attr(updated(), "state"), str_("closed")),
            eq(
                call(cls(issue), "exists?", [hash([("state", str_("opened"))])]),
                true_(),
            ),
        ],
    );
    let problem = SynthesisProblem::builder("close_issue")
        .param("arg0", Ty::Str)
        .returns(Ty::Instance(issue))
        .base_consts()
        .constant(Value::str("closed"))
        .constant(Value::Class(issue))
        .spec(spec)
        .build();
    (g.b.finish(), problem)
}

/// A8 `Issue#reopen`: reopen a closed, confidential issue (two column
/// writes).
fn a8() -> (InterpEnv, SynthesisProblem) {
    let g = gitlab_env();
    let issue = g.issue;
    let mut steps = seed_issues(issue);
    steps.push(exec(call(
        cls(issue),
        "create",
        [call(
            hash([("title", str_("Old bug")), ("state", str_("closed"))]),
            "merge",
            [hash([("confidential", true_()), ("author", str_("dave"))])],
        )],
    )));
    steps.push(bind(
        "issue",
        call(cls(issue), "find_by", [hash([("title", str_("Old bug"))])]),
    ));
    steps.push(target(vec![str_("Old bug")]));
    let spec = Spec::new(
        "reopening resets state and confidentiality",
        steps,
        vec![
            eq(attr(updated(), "id"), attr(var("issue"), "id")),
            eq(attr(updated(), "state"), str_("opened")),
            eq(attr(updated(), "confidential"), false_()),
            eq(attr(updated(), "title"), str_("Old bug")),
            eq(call(cls(issue), "count", []), int(4)),
        ],
    );
    let problem = SynthesisProblem::builder("reopen_issue")
        .param("arg0", Ty::Str)
        .returns(Ty::Instance(issue))
        .base_consts()
        .constant(Value::str("opened"))
        .constant(Value::Class(issue))
        .spec(spec)
        .build();
    (g.b.finish(), problem)
}

/// The four Gitlab benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            id: "A5".into(),
            group: Group::Gitlab,
            name: "Discussion#build".into(),
            build: Arc::new(a5),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 1,
                asserts_min: 4,
                asserts_max: 4,
                orig_paths: 1,
            },
        },
        Benchmark {
            id: "A6".into(),
            group: Group::Gitlab,
            name: "User#disable_two…".into(),
            build: Arc::new(a6),
            options: Arc::new(|| Options {
                max_size: 44,
                ..Options::default()
            }),
            expected: Expected {
                specs: 1,
                asserts_min: 10,
                asserts_max: 10,
                orig_paths: 1,
            },
        },
        Benchmark {
            id: "A7".into(),
            group: Group::Gitlab,
            name: "Issue#close".into(),
            build: Arc::new(a7),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 1,
                asserts_min: 3,
                asserts_max: 3,
                orig_paths: 1,
            },
        },
        Benchmark {
            id: "A8".into(),
            group: Group::Gitlab,
            name: "Issue#reopen".into(),
            build: Arc::new(a8),
            options: Arc::new(Options::default),
            expected: Expected {
                specs: 1,
                asserts_min: 5,
                asserts_max: 5,
                orig_paths: 1,
            },
        },
    ]
}
