//! The operational semantics of λ_syn (Fig. 9 and 10): a deterministic
//! tree-walking interpreter with the two features the synthesis algorithm
//! observes —
//!
//! * **assert counting** (`c` in Algorithm 2): how many postcondition
//!   assertions a candidate passed, used to order the work list;
//! * **effect collection** (E-MethCall / E-AssertFail): while a
//!   postcondition runs, the read/write effects of every library call are
//!   unioned; a failing assertion aborts with `err(ε_r, ε_w)`, which is what
//!   drives effect-guided hole insertion (S-Eff).
//!
//! State is split into an immutable [`InterpEnv`] (class table, native
//! method implementations, model↔table bindings, pristine database) shared
//! across runs, and a per-run [`WorldState`] (database snapshot, heap,
//! globals) that is rebuilt from the environment before every candidate
//! evaluation — the paper's "reset the global state before any setup block"
//! hook (§4).

#![deny(missing_docs)]

pub mod error;
pub mod eval;
pub mod spec;
pub mod world;

pub use error::RuntimeError;
pub use eval::Evaluator;
pub use spec::{run_spec, PreparedSpec, SetupStep, Spec, SpecOutcome};
pub use world::{InterpEnv, NativeImpl, ObjData, WorldState};
