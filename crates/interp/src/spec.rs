//! Specs and the spec runner (`EvalProgram` of Algorithm 2).
//!
//! A spec `⟨S, Q⟩` pairs setup code `S` — which somewhere calls the
//! synthesized method `x_r = P(e…)` — with a postcondition `Q`, a sequence
//! of assertions. Running a candidate against a spec yields a
//! [`SpecOutcome`]:
//!
//! * all asserts truthy → `Passed` (the candidate solves this spec);
//! * an assert falsy or erroring → `Failed` with the count of previously
//!   passed asserts (the work-list priority `c`) and the effects collected
//!   while the failing assert ran (`err(ε_r, ε_w)`, E-AssertFail) — the
//!   input to effect-guided synthesis;
//! * the candidate itself crashed during setup → `SetupError` (rejected).

use crate::error::RuntimeError;
use crate::eval::{Evaluator, Locals};
use crate::world::{InterpEnv, WorldState};
use rbsyn_lang::{EffectPair, Expr, ObsHasher, Program, Symbol};
use std::fmt;
use std::sync::Arc;

/// One step of spec setup code.
#[derive(Clone)]
pub enum SetupStep {
    /// `x = e` — bind a setup value visible to later steps and asserts
    /// (the `@post = Post.create(...)` of Fig. 1).
    Bind(Symbol, Expr),
    /// Evaluate for side effect only.
    Exec(Expr),
    /// `bind = P(args…)` — call the program under synthesis.
    CallTarget {
        /// Variable receiving the result (the postcond parameter, e.g.
        /// `updated`).
        bind: Symbol,
        /// Argument expressions, evaluated under the setup bindings.
        args: Vec<Expr>,
    },
    /// Arbitrary world preparation in Rust (the `seed_db` of Fig. 1).
    Native(NativeSetup),
}

/// A Rust-side world-preparation hook (the payload of
/// [`SetupStep::Native`]).
pub type NativeSetup =
    Arc<dyn Fn(&InterpEnv, &mut WorldState) -> Result<(), RuntimeError> + Send + Sync>;

impl fmt::Debug for SetupStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupStep::Bind(x, e) => write!(f, "Bind({x}, {})", e.compact()),
            SetupStep::Exec(e) => write!(f, "Exec({})", e.compact()),
            SetupStep::CallTarget { bind, args } => {
                let args: Vec<String> = args.iter().map(|a| a.compact()).collect();
                write!(f, "{bind} = target({})", args.join(", "))
            }
            SetupStep::Native(_) => write!(f, "Native(..)"),
        }
    }
}

/// A spec `⟨S, Q⟩`: named setup plus postcondition assertions.
#[derive(Clone, Debug)]
pub struct Spec {
    /// Human-readable title (Fig. 1's `spec "author can only change titles"`).
    pub name: String,
    /// Setup `S`, containing exactly one [`SetupStep::CallTarget`].
    pub steps: Vec<SetupStep>,
    /// Postcondition `Q`: assert expressions evaluated in order.
    pub asserts: Vec<Expr>,
}

impl Spec {
    /// Builds a spec.
    pub fn new(name: &str, steps: Vec<SetupStep>, asserts: Vec<Expr>) -> Spec {
        Spec {
            name: name.into(),
            steps,
            asserts,
        }
    }

    /// The variable the target call binds (`x_r`).
    pub fn result_var(&self) -> Option<Symbol> {
        self.steps.iter().find_map(|s| match s {
            SetupStep::CallTarget { bind, .. } => Some(*bind),
            _ => None,
        })
    }

    /// A copy of this spec with the postcondition replaced — used for guard
    /// synthesis, where the same setup must make a boolean program evaluate
    /// to true (`assert x_r`) or false (`assert !x_r`) (§3.3).
    pub fn with_asserts(&self, asserts: Vec<Expr>) -> Spec {
        Spec {
            name: self.name.clone(),
            steps: self.steps.clone(),
            asserts,
        }
    }
}

/// Result of running one candidate against one spec.
#[derive(Clone, Debug)]
pub enum SpecOutcome {
    /// Every assertion passed.
    Passed {
        /// Number of assertions (= the spec's assert count).
        asserts: usize,
    },
    /// An assertion was falsy (or raised): `err(ε_r, ε_w)` with the passed
    /// count.
    Failed {
        /// Assertions that passed before the failure.
        passed: usize,
        /// Effects collected while the failing assertion evaluated.
        effects: EffectPair,
    },
    /// The candidate (or setup) raised before the postcondition.
    SetupError(RuntimeError),
}

impl SpecOutcome {
    /// Did every assertion pass?
    pub fn passed(&self) -> bool {
        matches!(self, SpecOutcome::Passed { .. })
    }

    /// The work-list priority `c`: asserts passed before stopping.
    pub fn passed_count(&self) -> usize {
        match self {
            SpecOutcome::Passed { asserts } => *asserts,
            SpecOutcome::Failed { passed, .. } => *passed,
            SpecOutcome::SetupError(_) => 0,
        }
    }
}

/// Runs `program` against `spec` in a fresh world (Algorithm 2's
/// `EvalProgram`).
pub fn run_spec(env: &InterpEnv, spec: &Spec, program: &Program) -> SpecOutcome {
    match PreparedSpec::prepare(env, spec) {
        Ok(p) => p.run(env, program),
        Err(e) => SpecOutcome::SetupError(e),
    }
}

/// A spec with its setup pre-executed up to the target call.
///
/// The search runs thousands of candidates against the same spec; the setup
/// (database seeding) is deterministic and candidate-independent, so it is
/// executed once and snapshotted. Each candidate run clones the snapshot —
/// the moral equivalent of the paper's "reset global state" hook, hoisted
/// out of the inner loop.
pub struct PreparedSpec {
    snapshot: WorldState,
    locals: Locals,
    bind: Symbol,
    args: Vec<rbsyn_lang::Value>,
    post_steps: Vec<SetupStep>,
    asserts: Vec<Expr>,
}

impl PreparedSpec {
    /// Executes the setup up to (and including) the target call's argument
    /// evaluation, then snapshots.
    ///
    /// # Errors
    ///
    /// Propagates any runtime error in the setup itself (a suite bug, not a
    /// candidate failure).
    pub fn prepare(env: &InterpEnv, spec: &Spec) -> Result<PreparedSpec, RuntimeError> {
        let mut state = WorldState::fresh(env);
        let mut ev = Evaluator::new(env, &mut state);
        let mut locals = Locals::new();
        let mut steps = spec.steps.iter();
        let (bind, args) = loop {
            let Some(step) = steps.next() else {
                return Err(RuntimeError::Other(format!(
                    "spec {:?} never calls the target method",
                    spec.name
                )));
            };
            match step {
                SetupStep::Bind(x, e) => {
                    let v = ev.eval(&mut locals, e)?;
                    locals.bind(*x, v);
                }
                SetupStep::Exec(e) => {
                    ev.eval(&mut locals, e)?;
                }
                SetupStep::Native(f) => f(env, ev.state)?,
                SetupStep::CallTarget { bind, args } => {
                    let mut vs = Vec::with_capacity(args.len());
                    for a in args {
                        vs.push(ev.eval(&mut locals, a)?);
                    }
                    break (*bind, vs);
                }
            }
        };
        // Collapse the state's copy-on-write layers so the per-candidate
        // clone in `run` is a handful of refcount bumps.
        state.freeze();
        Ok(PreparedSpec {
            snapshot: state,
            locals,
            bind,
            args,
            post_steps: steps.cloned().collect(),
            asserts: spec.asserts.clone(),
        })
    }

    /// Number of assertions in the postcondition.
    pub fn assert_count(&self) -> usize {
        self.asserts.len()
    }

    /// Replaces the postcondition (guard synthesis, §3.3).
    pub fn with_asserts(&self, asserts: Vec<Expr>) -> PreparedSpec
    where
        Self: Sized,
    {
        PreparedSpec {
            snapshot: self.snapshot.clone(),
            locals: self.locals.clone(),
            bind: self.bind,
            args: self.args.clone(),
            post_steps: self.post_steps.clone(),
            asserts,
        }
    }

    /// The variable bound by the target call.
    pub fn result_var(&self) -> Symbol {
        self.bind
    }

    /// Runs one candidate from the snapshot.
    pub fn run(&self, env: &InterpEnv, program: &Program) -> SpecOutcome {
        self.run_impl(env, program, false).0
    }

    /// Like [`PreparedSpec::run`], but also returns the candidate's
    /// **evaluation-vector entry**: a 128-bit fingerprint of its observed
    /// behavior on this test — the call's result value, the world state it
    /// left behind (copy-on-write-aware, see
    /// [`WorldState::obs_fingerprint`]), plus the outcome tag, passed
    /// count and failing-assert effect trace.
    ///
    /// Two candidates with equal fingerprints behave identically w.r.t.
    /// *this* prepared test: any expression completed around either
    /// evaluates from the same post-call world and binding, so the search
    /// may prune one of them (observational-equivalence dedup). The
    /// fingerprint is `None` only when the candidate itself crashed — such
    /// candidates are rejected outright and never compared.
    pub fn run_traced(&self, env: &InterpEnv, program: &Program) -> (SpecOutcome, Option<u128>) {
        self.run_impl(env, program, true)
    }

    fn run_impl(
        &self,
        env: &InterpEnv,
        program: &Program,
        trace: bool,
    ) -> (SpecOutcome, Option<u128>) {
        let mut state = self.snapshot.clone();
        let mut locals = self.locals.clone();
        // Phase 1: call the candidate. The evaluator is scoped so the
        // state borrow ends before fingerprinting; the remaining fuel is
        // carried into phase 2, keeping the total budget identical to a
        // single-evaluator run.
        let (call_result, fuel_left) = {
            let mut ev = Evaluator::new(env, &mut state);
            let r = ev.call_program(program, self.args.clone());
            (r, ev.fuel())
        };
        let v = match call_result {
            Ok(v) => v,
            Err(e) => return (SpecOutcome::SetupError(e), None),
        };
        // The vector core is captured *here* — right after the call —
        // because completions of a pruned candidate re-evaluate from
        // exactly this point; later post-steps/asserts are a deterministic
        // function of it.
        let core_fp = trace.then(|| {
            let mut h = ObsHasher::new();
            h.put_value(&v);
            h.put_u128(state.obs_fingerprint(&self.snapshot));
            h.finish128()
        });
        locals.bind(self.bind, v);
        let mut ev = Evaluator::with_fuel(env, &mut state, fuel_left);
        let fp = |outcome: &SpecOutcome| {
            core_fp.map(|core| {
                let mut h = ObsHasher::new();
                h.put_u128(core);
                match outcome {
                    SpecOutcome::Passed { asserts } => {
                        h.put_u64(0);
                        h.put_u64(*asserts as u64);
                    }
                    SpecOutcome::Failed { passed, effects } => {
                        h.put_u64(1);
                        h.put_u64(*passed as u64);
                        h.put_effect_pair(effects);
                    }
                    SpecOutcome::SetupError(_) => h.put_u64(2),
                }
                h.finish128()
            })
        };
        for step in &self.post_steps {
            let r: Result<(), RuntimeError> = match step {
                SetupStep::Bind(x, e) => ev.eval(&mut locals, e).map(|v| locals.bind(*x, v)),
                SetupStep::Exec(e) => ev.eval(&mut locals, e).map(|_| ()),
                SetupStep::Native(f) => f(env, ev.state),
                SetupStep::CallTarget { .. } => Err(RuntimeError::Other(
                    "specs may call the target method only once".into(),
                )),
            };
            if let Err(e) = r {
                let out = SpecOutcome::SetupError(e);
                let f = fp(&out);
                return (out, f);
            }
        }

        // Postcondition: evaluate asserts with effect tracking; collected
        // effects reset after every passing assert (E-SeqVal).
        let mut passed = 0usize;
        for a in &self.asserts {
            ev.tracker = Some(EffectPair::pure_());
            let result = ev.eval(&mut locals, a);
            let effects = ev.tracker.take().unwrap_or_default();
            match result {
                Ok(v) if v.truthy() => passed += 1,
                // E-AssertFail — and asserts that *raise* also fail,
                // carrying whatever effects were collected up to the raise.
                Ok(_) | Err(_) => {
                    let out = SpecOutcome::Failed { passed, effects };
                    let f = fp(&out);
                    return (out, f);
                }
            }
        }
        let out = SpecOutcome::Passed { asserts: passed };
        let f = fp(&out);
        (out, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_db::Database;
    use rbsyn_lang::builder::*;
    use rbsyn_lang::{Effect, EffectSet, Ty, Value};
    use rbsyn_ty::{ClassHierarchy, ClassTable, EnumerateAt, MethodKind, MethodSig, RetSpec};

    /// Environment with a `Counter` global: `Counter.get` (reads region
    /// `Counter.value`) and `Counter.bump` (writes it).
    fn counter_env() -> InterpEnv {
        let mut h = ClassHierarchy::new();
        let counter = h.define("Counter", None);
        let mut table = ClassTable::new(h);
        let region = EffectSet::single(Effect::Region(counter, Symbol::intern("value")));
        table.define_method(
            counter,
            MethodSig {
                name: Symbol::intern("get"),
                kind: MethodKind::Singleton,
                ret: RetSpec::Static {
                    params: vec![],
                    ret: Ty::Int,
                },
                effect: EffectPair::new(region.clone(), EffectSet::pure_()),
            },
            EnumerateAt::OwnerOnly,
        );
        table.define_method(
            counter,
            MethodSig {
                name: Symbol::intern("bump"),
                kind: MethodKind::Singleton,
                ret: RetSpec::Static {
                    params: vec![],
                    ret: Ty::Int,
                },
                effect: EffectPair::new(EffectSet::pure_(), region),
            },
            EnumerateAt::OwnerOnly,
        );
        let mut env = InterpEnv::new(table, Database::new());
        env.register_native(
            counter,
            MethodKind::Singleton,
            "get",
            Arc::new(|_, state, _, _| {
                Ok(state
                    .globals
                    .get(&Symbol::intern("counter"))
                    .cloned()
                    .unwrap_or(Value::Int(0)))
            }),
        );
        env.register_native(
            counter,
            MethodKind::Singleton,
            "bump",
            Arc::new(|_, state, _, _| {
                let k = Symbol::intern("counter");
                let cur = match state.globals.get(&k) {
                    Some(Value::Int(i)) => *i,
                    _ => 0,
                };
                state.globals.insert(k, Value::Int(cur + 1));
                Ok(Value::Int(cur + 1))
            }),
        );
        env
    }

    fn counter_cls(env: &InterpEnv) -> Expr {
        cls(env.table.hierarchy.find("Counter").unwrap())
    }

    #[test]
    fn passing_spec_counts_asserts() {
        let env = counter_env();
        let spec = Spec::new(
            "identity returns its argument",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![int(5)],
            }],
            vec![
                call(var("xr"), "noop_eq", []), // replaced below
            ],
        );
        // Use a simpler assert: xr itself (5 is truthy).
        let spec = spec.with_asserts(vec![var("xr"), var("xr")]);
        let p = Program::new("m", ["x"], var("x"));
        let out = run_spec(&env, &spec, &p);
        assert!(out.passed());
        assert_eq!(out.passed_count(), 2);
    }

    #[test]
    fn failing_assert_reports_effects() {
        let env = counter_env();
        let c = counter_cls(&env);
        // Setup: call target (which does nothing); assert Counter.get
        // (reads Counter.value, initially 0 → falsy in Ruby? No: 0 is
        // truthy; compare via ==) — keep it simple: assert that get is nil,
        // which is false, to trigger failure with read effects collected.
        let spec = Spec::new(
            "counter must have been bumped",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![call(call(c, "get", []), "nil?", [])],
        );
        // nil? is not registered → the assert *raises*; treated as failure
        // with the effects collected so far (the get annotation).
        let p = Program::new("m", [], nil());
        match run_spec(&env, &spec, &p) {
            SpecOutcome::Failed { passed, effects } => {
                assert_eq!(passed, 0);
                let counter = env.table.hierarchy.find("Counter").unwrap();
                assert_eq!(
                    effects.read,
                    EffectSet::single(Effect::Region(counter, Symbol::intern("value")))
                );
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn candidate_writes_satisfy_spec() {
        let env = counter_env();
        let c = counter_cls(&env);
        // assert Counter.get == 1 — via truthiness of equality we don't
        // have ==; instead assert on the bump return bound through target.
        let spec = Spec::new(
            "target must bump",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![var("xr")],
        );
        let good = Program::new("m", [], call(c.clone(), "bump", []));
        assert!(run_spec(&env, &spec, &good).passed());
    }

    #[test]
    fn setup_errors_reject_candidates() {
        let env = counter_env();
        let spec = Spec::new(
            "boom",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![true_()],
        );
        let bad = Program::new("m", [], call(nil(), "boom", []));
        assert!(matches!(
            run_spec(&env, &spec, &bad),
            SpecOutcome::SetupError(RuntimeError::NoMethod { .. })
        ));
    }

    #[test]
    fn tracker_resets_between_asserts() {
        let env = counter_env();
        let c = counter_cls(&env);
        // First assert calls get (passes, 0 is truthy); second assert fails
        // with *no* effects — proving the reset (E-SeqVal).
        let spec = Spec::new(
            "reset check",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![call(c, "get", []), false_()],
        );
        let p = Program::new("m", [], nil());
        match run_spec(&env, &spec, &p) {
            SpecOutcome::Failed { passed, effects } => {
                assert_eq!(passed, 1);
                assert!(
                    effects.is_pure(),
                    "effects from the first assert were discarded"
                );
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn bind_and_native_steps() {
        let env = counter_env();
        let spec = Spec::new(
            "bindings reach asserts",
            vec![
                SetupStep::Native(Arc::new(|_, state| {
                    state
                        .globals
                        .insert(Symbol::intern("seeded"), Value::Bool(true));
                    Ok(())
                })),
                SetupStep::Bind("flag".into(), true_()),
                SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![],
                },
            ],
            vec![var("flag"), var("xr")],
        );
        let p = Program::new("m", [], int(1));
        assert!(run_spec(&env, &spec, &p).passed());
        assert_eq!(spec.result_var(), Some(Symbol::intern("xr")));
    }

    #[test]
    fn traced_runs_fingerprint_behavior() {
        let env = counter_env();
        let c = counter_cls(&env);
        // Spec fails for nil-returning candidates (assert xr).
        let spec = Spec::new(
            "truthy result",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![var("xr")],
        );
        let prepared = PreparedSpec::prepare(&env, &spec).unwrap();
        // Two syntactically different candidates with identical behavior
        // (both return nil, touch nothing) share a fingerprint.
        let p1 = Program::new("m", [], nil());
        let p2 = Program::new("m", [], if_(true_(), nil(), int(1)));
        let (o1, f1) = prepared.run_traced(&env, &p1);
        let (o2, f2) = prepared.run_traced(&env, &p2);
        assert!(!o1.passed() && !o2.passed());
        assert_eq!(f1, f2, "equal behavior, equal vector entry");
        assert!(f1.is_some());
        // A candidate that mutates global state diverges.
        let p3 = Program::new("m", [], call(c, "bump", []));
        let (_, f3) = prepared.run_traced(&env, &p3);
        assert_ne!(f1, f3, "state writes are observable");
        // A crashing candidate has no vector entry.
        let boom = Program::new("m", [], call(nil(), "boom", []));
        let (ob, fb) = prepared.run_traced(&env, &boom);
        assert!(matches!(ob, SpecOutcome::SetupError(_)));
        assert_eq!(fb, None);
        // The untraced runner agrees on outcomes.
        assert_eq!(prepared.run(&env, &p1).passed_count(), o1.passed_count());
    }

    #[test]
    fn worlds_are_isolated_between_runs() {
        let env = counter_env();
        let c = counter_cls(&env);
        let spec = Spec::new(
            "bump visible only within a run",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![var("xr")],
        );
        let bump = Program::new("m", [], call(c, "bump", []));
        // Run twice: each run starts from a zero counter, so bump returns 1
        // (truthy) both times; a leak would return 2 the second time, still
        // truthy — so check the value through the outcome instead.
        for _ in 0..2 {
            let out = run_spec(&env, &spec, &bump);
            assert!(out.passed());
        }
    }
}
