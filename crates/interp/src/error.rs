//! Runtime errors.
//!
//! These correspond to Ruby exceptions a candidate program can raise while
//! a spec runs (`NoMethodError` on `nil`, argument mismatches, …). A
//! candidate that raises during setup is simply rejected by the search; the
//! paper's type narrowing (§3.1) exists precisely to prune most of these
//! before execution.

use rbsyn_lang::Symbol;
use std::error::Error;
use std::fmt;

/// A runtime error raised while evaluating λ_syn code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// No method `name` on an instance/class of `class_name` (Ruby
    /// `NoMethodError`; the `nil` receiver case is the common one).
    NoMethod {
        /// Receiver class name (e.g. `NilClass`).
        class_name: String,
        /// Method that was called.
        name: Symbol,
    },
    /// Method called with the wrong number of arguments.
    ArgCount {
        /// Method that was called.
        name: Symbol,
        /// Declared arity.
        expected: usize,
        /// Actual argument count.
        got: usize,
    },
    /// Method called with an argument of an unexpected shape (Ruby
    /// `TypeError`).
    TypeMismatch {
        /// Method that was called.
        name: Symbol,
        /// Human-readable description of what was expected.
        expected: &'static str,
    },
    /// Unbound variable (should not happen for well-formed candidates).
    UnboundVar(Symbol),
    /// A hole reached the evaluator (a bug in the caller: only `evaluable`
    /// candidates may be run).
    HoleEvaluated,
    /// Evaluation step budget exhausted (guards against pathological
    /// candidates).
    FuelExhausted,
    /// Evaluation was interrupted by the deadline watchdog: the run's
    /// hard deadline passed while this candidate was still executing, so
    /// the evaluator aborted it mid-run (checked every
    /// [`crate::eval::INTERRUPT_CHECK_STRIDE`] steps). The search treats
    /// the candidate as rejected and stops at its next deadline poll.
    Interrupted,
    /// ActiveRecord-style record-not-found and validation failures.
    RecordError(String),
    /// Anything else a native method wants to raise.
    Other(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoMethod { class_name, name } => {
                write!(f, "undefined method `{name}` for {class_name}")
            }
            RuntimeError::ArgCount {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "wrong number of arguments to `{name}` (given {got}, expected {expected})"
                )
            }
            RuntimeError::TypeMismatch { name, expected } => {
                write!(f, "type mismatch in `{name}`: expected {expected}")
            }
            RuntimeError::UnboundVar(x) => write!(f, "undefined local variable `{x}`"),
            RuntimeError::HoleEvaluated => write!(f, "attempted to evaluate a hole"),
            RuntimeError::FuelExhausted => write!(f, "evaluation step budget exhausted"),
            RuntimeError::Interrupted => write!(f, "evaluation interrupted by watchdog"),
            RuntimeError::RecordError(msg) => write!(f, "record error: {msg}"),
            RuntimeError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RuntimeError::NoMethod {
            class_name: "NilClass".into(),
            name: Symbol::intern("title"),
        };
        assert_eq!(e.to_string(), "undefined method `title` for NilClass");
        let a = RuntimeError::ArgCount {
            name: Symbol::intern("m"),
            expected: 1,
            got: 2,
        };
        assert!(a.to_string().contains("given 2, expected 1"));
        assert!(RuntimeError::UnboundVar(Symbol::intern("x"))
            .to_string()
            .contains("`x`"));
    }
}
