//! Expression evaluation (the standard rules the paper omits, plus
//! E-MethCall effect collection from Fig. 10).

use crate::error::RuntimeError;
use crate::world::{InterpEnv, WorldState};
use rbsyn_lang::{EffectPair, Expr, Program, Symbol, Value};
use rbsyn_ty::MethodKind;

/// Lexically scoped local variables (a shadowing stack; lookups scan from
/// the innermost binding outward).
#[derive(Clone, Debug, Default)]
pub struct Locals {
    vars: Vec<(Symbol, Value)>,
}

impl Locals {
    /// Empty scope.
    pub fn new() -> Locals {
        Locals::default()
    }

    /// Binds a variable (shadows any outer binding of the same name).
    pub fn bind(&mut self, name: Symbol, v: Value) {
        self.vars.push((name, v));
    }

    /// Innermost binding of `name`.
    pub fn get(&self, name: Symbol) -> Option<&Value> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// Current stack depth, for scope save/restore around `let` bodies.
    pub fn mark(&self) -> usize {
        self.vars.len()
    }

    /// Pops bindings down to a previous mark.
    pub fn release(&mut self, mark: usize) {
        self.vars.truncate(mark);
    }
}

/// Default per-run evaluation step budget. Candidates are tiny; this only
/// guards against pathological interactions.
const DEFAULT_FUEL: u64 = 1_000_000;

/// How many evaluation steps pass between watchdog-interrupt checks. A
/// power of two so the check is a mask, not a division; small enough that
/// a hard-cancelled evaluation dies within microseconds of the flag, large
/// enough that un-watched runs pay one branch per step and nothing else.
pub const INTERRUPT_CHECK_STRIDE: u64 = 1024;

/// A single-run evaluator over a [`WorldState`].
pub struct Evaluator<'a> {
    /// Environment (annotations + natives).
    pub env: &'a InterpEnv,
    /// The run's mutable state.
    pub state: &'a mut WorldState,
    /// While `Some`, every method call unions its annotation into the pair
    /// (E-MethCall); enabled during postcondition asserts.
    pub tracker: Option<EffectPair>,
    fuel: u64,
}

impl<'a> Evaluator<'a> {
    /// Builds an evaluator with the default fuel budget.
    pub fn new(env: &'a InterpEnv, state: &'a mut WorldState) -> Evaluator<'a> {
        Evaluator::with_fuel(env, state, DEFAULT_FUEL)
    }

    /// Builds an evaluator with an explicit fuel budget — used by callers
    /// that split one logical run across several evaluators (the traced
    /// spec runner pauses between phases to fingerprint the state) and
    /// must keep the run's total budget identical to a single-evaluator
    /// run.
    pub fn with_fuel(env: &'a InterpEnv, state: &'a mut WorldState, fuel: u64) -> Evaluator<'a> {
        Evaluator {
            env,
            state,
            tracker: None,
            fuel,
        }
    }

    /// Fuel remaining in this evaluator's budget.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    fn burn(&mut self) -> Result<(), RuntimeError> {
        if self.fuel == 0 {
            return Err(RuntimeError::FuelExhausted);
        }
        self.fuel -= 1;
        // Watchdog hook on the eval hot path: a run whose hard deadline
        // passed is aborted mid-candidate, not just between candidates.
        if self.fuel & (INTERRUPT_CHECK_STRIDE - 1) == 0 {
            if let Some(flag) = self.env.interrupt_flag() {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err(RuntimeError::Interrupted);
                }
            }
        }
        Ok(())
    }

    /// Evaluates an expression under the given locals.
    ///
    /// # Errors
    ///
    /// Any Ruby-level failure (missing method, unbound variable, hole) is
    /// reported as a [`RuntimeError`]; the search treats erroring candidates
    /// as rejected.
    pub fn eval(&mut self, locals: &mut Locals, e: &Expr) -> Result<Value, RuntimeError> {
        rbsyn_lang::failpoint::hit("interp::eval");
        self.burn()?;
        match e {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(x) => locals.get(*x).cloned().ok_or(RuntimeError::UnboundVar(*x)),
            Expr::Seq(es) => {
                let mut last = Value::Nil;
                for e in es {
                    last = self.eval(locals, e)?;
                }
                Ok(last)
            }
            Expr::Call { recv, meth, args } => {
                let recv_v = self.eval(locals, recv)?;
                let mut arg_vs = Vec::with_capacity(args.len());
                for a in args {
                    arg_vs.push(self.eval(locals, a)?);
                }
                self.call_method(&recv_v, *meth, &arg_vs)
            }
            Expr::If { cond, then, els } => {
                let c = self.eval(locals, cond)?;
                if c.truthy() {
                    self.eval(locals, then)
                } else {
                    self.eval(locals, els)
                }
            }
            Expr::Let { var, val, body } => {
                let v = self.eval(locals, val)?;
                let mark = locals.mark();
                locals.bind(*var, v);
                let out = self.eval(locals, body);
                locals.release(mark);
                out
            }
            Expr::HashLit(entries) => {
                let mut h = Vec::with_capacity(entries.len());
                for (k, ve) in entries {
                    let v = self.eval(locals, ve)?;
                    h.push((Value::Sym(*k), v));
                }
                Ok(Value::Hash(h))
            }
            Expr::Not(b) => {
                let v = self.eval(locals, b)?;
                Ok(Value::Bool(!v.truthy()))
            }
            Expr::Or(a, b) => {
                let va = self.eval(locals, a)?;
                if va.truthy() {
                    Ok(va)
                } else {
                    self.eval(locals, b)
                }
            }
            Expr::Hole(_) | Expr::EffHole(_) => Err(RuntimeError::HoleEvaluated),
        }
    }

    /// Dispatches a method call: singleton dispatch for `Class` receivers,
    /// instance dispatch (walking the superclass chain) otherwise. Unions
    /// the callee's effect annotation into the tracker when tracking.
    pub fn call_method(
        &mut self,
        recv: &Value,
        name: Symbol,
        args: &[Value],
    ) -> Result<Value, RuntimeError> {
        self.burn()?;
        let (class, kind) = match recv {
            Value::Class(c) => (*c, MethodKind::Singleton),
            other => {
                let c = self
                    .env
                    .value_class(self.state, other)
                    .expect("non-class values always have a class");
                (c, MethodKind::Instance)
            }
        };
        let native = self.env.find_native(class, kind, name).cloned();
        let Some(native) = native else {
            let class_name = self.env.table.hierarchy.name(class).as_str().to_owned();
            let class_name = match kind {
                MethodKind::Singleton => format!("{class_name} (class)"),
                MethodKind::Instance => class_name,
            };
            return Err(RuntimeError::NoMethod { class_name, name });
        };
        // E-MethCall: union the annotation (resolved at the dispatch class,
        // at the configured precision) into the collected effects.
        if self.tracker.is_some() {
            if let Some((mref, _)) = self.env.table.lookup(class, kind, name) {
                let eff = self.env.table.effect_of(mref, class);
                if let Some(t) = &mut self.tracker {
                    t.union_in_place(&eff);
                }
            }
        }
        native(self.env, self.state, recv, args)
    }

    /// Calls a synthesized program with argument values (the `x_r = P(e)`
    /// form in spec setups).
    pub fn call_program(&mut self, p: &Program, args: Vec<Value>) -> Result<Value, RuntimeError> {
        if p.params.len() != args.len() {
            return Err(RuntimeError::ArgCount {
                name: p.name,
                expected: p.params.len(),
                got: args.len(),
            });
        }
        let mut locals = Locals::new();
        for (param, v) in p.params.iter().zip(args) {
            locals.bind(*param, v);
        }
        self.eval(&mut locals, &p.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::InterpEnv;
    use rbsyn_db::Database;
    use rbsyn_lang::builder::*;
    use rbsyn_lang::Ty;
    use rbsyn_lang::{Effect, EffectSet};
    use rbsyn_ty::{ClassHierarchy, ClassTable, EnumerateAt, MethodSig, RetSpec};
    use std::sync::Arc;

    fn plain_env() -> InterpEnv {
        let h = ClassHierarchy::new();
        InterpEnv::new(ClassTable::new(h), Database::new())
    }

    #[test]
    fn literals_vars_and_seq() {
        let env = plain_env();
        let mut state = WorldState::fresh(&env);
        let mut ev = Evaluator::new(&env, &mut state);
        let mut locals = Locals::new();
        locals.bind(Symbol::intern("x"), Value::Int(7));
        assert_eq!(ev.eval(&mut locals, &int(3)).unwrap(), Value::Int(3));
        assert_eq!(ev.eval(&mut locals, &var("x")).unwrap(), Value::Int(7));
        assert_eq!(
            ev.eval(&mut locals, &seq([int(1), int(2)])).unwrap(),
            Value::Int(2)
        );
        assert!(matches!(
            ev.eval(&mut locals, &var("missing")),
            Err(RuntimeError::UnboundVar(_))
        ));
    }

    #[test]
    fn interrupt_flag_aborts_a_running_eval() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut env = plain_env();
        let flag = Arc::new(AtomicBool::new(true));
        env.set_interrupt(Arc::clone(&flag));
        let mut state = WorldState::fresh(&env);
        // A long sequence guarantees the evaluator crosses at least one
        // stride boundary before finishing.
        let steps: Vec<_> = (0..2 * INTERRUPT_CHECK_STRIDE).map(|_| int(1)).collect();
        let e = seq(steps);
        let mut ev = Evaluator::new(&env, &mut state);
        assert_eq!(
            ev.eval(&mut Locals::new(), &e),
            Err(RuntimeError::Interrupted),
            "a set flag kills the eval at a stride check"
        );
        // Unset flag: the same program completes with fuel to spare.
        flag.store(false, Ordering::Relaxed);
        let mut ev = Evaluator::new(&env, &mut state);
        assert_eq!(ev.eval(&mut Locals::new(), &e).unwrap(), Value::Int(1));
    }

    #[test]
    fn conditionals_use_truthiness() {
        let env = plain_env();
        let mut state = WorldState::fresh(&env);
        let mut ev = Evaluator::new(&env, &mut state);
        let mut locals = Locals::new();
        assert_eq!(
            ev.eval(&mut locals, &if_(nil(), int(1), int(2))).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            ev.eval(&mut locals, &if_(int(0), int(1), int(2))).unwrap(),
            Value::Int(1),
            "0 is truthy"
        );
    }

    #[test]
    fn let_scoping_shadows_and_restores() {
        let env = plain_env();
        let mut state = WorldState::fresh(&env);
        let mut ev = Evaluator::new(&env, &mut state);
        let mut locals = Locals::new();
        locals.bind(Symbol::intern("x"), Value::Int(1));
        let e = let_("x", int(2), var("x"));
        assert_eq!(ev.eval(&mut locals, &e).unwrap(), Value::Int(2));
        assert_eq!(locals.get(Symbol::intern("x")), Some(&Value::Int(1)));
    }

    #[test]
    fn guards_and_hashes() {
        let env = plain_env();
        let mut state = WorldState::fresh(&env);
        let mut ev = Evaluator::new(&env, &mut state);
        let mut locals = Locals::new();
        assert_eq!(
            ev.eval(&mut locals, &not(nil())).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            ev.eval(&mut locals, &or(false_(), int(5))).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            ev.eval(&mut locals, &or(int(1), var("boom"))).unwrap(),
            Value::Int(1),
            "|| short-circuits"
        );
        let h = ev.eval(&mut locals, &hash([("a", int(1))])).unwrap();
        assert_eq!(h.hash_get(&Value::sym("a")), Some(&Value::Int(1)));
    }

    #[test]
    fn holes_refuse_to_evaluate() {
        let env = plain_env();
        let mut state = WorldState::fresh(&env);
        let mut ev = Evaluator::new(&env, &mut state);
        let mut locals = Locals::new();
        assert!(matches!(
            ev.eval(&mut locals, &hole(Ty::Int)),
            Err(RuntimeError::HoleEvaluated)
        ));
    }

    #[test]
    fn missing_methods_error() {
        let env = plain_env();
        let mut state = WorldState::fresh(&env);
        let mut ev = Evaluator::new(&env, &mut state);
        let mut locals = Locals::new();
        let e = call(nil(), "title", []);
        match ev.eval(&mut locals, &e) {
            Err(RuntimeError::NoMethod { class_name, .. }) => {
                assert_eq!(class_name, "NilClass")
            }
            other => panic!("expected NoMethod, got {other:?}"),
        }
    }

    #[test]
    fn program_calls_bind_params() {
        let env = plain_env();
        let mut state = WorldState::fresh(&env);
        let mut ev = Evaluator::new(&env, &mut state);
        let p = Program::new("m", ["a", "b"], var("b"));
        assert_eq!(
            ev.call_program(&p, vec![Value::Int(1), Value::Int(2)])
                .unwrap(),
            Value::Int(2)
        );
        assert!(matches!(
            ev.call_program(&p, vec![Value::Int(1)]),
            Err(RuntimeError::ArgCount { .. })
        ));
    }

    #[test]
    fn tracking_unions_call_annotations() {
        let mut h = ClassHierarchy::new();
        let post = h.define("Post", None);
        let mut table = ClassTable::new(h);
        let region = EffectSet::single(Effect::Region(post, Symbol::intern("title")));
        table.define_method(
            post,
            MethodSig {
                name: Symbol::intern("title"),
                kind: rbsyn_ty::MethodKind::Instance,
                ret: RetSpec::Static {
                    params: vec![],
                    ret: Ty::Str,
                },
                effect: EffectPair::new(region.clone(), EffectSet::pure_()),
            },
            EnumerateAt::OwnerOnly,
        );
        let mut env = InterpEnv::new(table, Database::new());
        env.register_native(
            post,
            rbsyn_ty::MethodKind::Instance,
            "title",
            Arc::new(|_, _, _, _| Ok(Value::str("t"))),
        );
        let mut state = WorldState::fresh(&env);
        let obj = state.alloc(crate::world::ObjData {
            class: post,
            ivars: Default::default(),
            row: None,
        });
        let mut ev = Evaluator::new(&env, &mut state);
        ev.tracker = Some(EffectPair::pure_());
        let mut locals = Locals::new();
        locals.bind(Symbol::intern("p"), Value::Obj(obj));
        ev.eval(&mut locals, &call(var("p"), "title", [])).unwrap();
        assert_eq!(ev.tracker.as_ref().unwrap().read, region);
        // Without tracking, nothing is collected.
        ev.tracker = None;
        ev.eval(&mut locals, &call(var("p"), "title", [])).unwrap();
        assert!(ev.tracker.is_none());
    }
}
