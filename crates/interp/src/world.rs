//! Worlds: the immutable interpretation environment and the mutable
//! per-run state.

use crate::error::RuntimeError;
use rbsyn_db::{Database, RowId, TableId};
use rbsyn_lang::{ClassId, ObjRef, Symbol, Value};
use rbsyn_ty::{ClassTable, MethodKind};
use std::collections::HashMap;
use std::sync::Arc;

/// Implementation of a native (library) method.
///
/// Natives are leaf operations — database queries, string/integer
/// primitives, accessor reads/writes — so they receive the environment and
/// raw state rather than a full evaluator.
pub type NativeImpl = Arc<
    dyn Fn(&InterpEnv, &mut WorldState, &Value, &[Value]) -> Result<Value, RuntimeError>
        + Send
        + Sync,
>;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct NativeKey(ClassId, MethodKind, Symbol);

/// The immutable interpretation environment: type-and-effect annotations
/// (the class table `CT`), native method bodies, model↔table bindings, and
/// the pristine database every run starts from.
#[derive(Clone)]
pub struct InterpEnv {
    /// Class table with annotations; also owns the class hierarchy.
    pub table: ClassTable,
    natives: HashMap<NativeKey, NativeImpl>,
    models: HashMap<ClassId, TableId>,
    /// Database template cloned into every fresh [`WorldState`].
    pub db_template: Database,
}

impl InterpEnv {
    /// Builds an environment over a class table and a database template.
    pub fn new(table: ClassTable, db_template: Database) -> InterpEnv {
        InterpEnv {
            table,
            natives: HashMap::new(),
            models: HashMap::new(),
            db_template,
        }
    }

    /// Registers the body of a method; the annotation must be registered
    /// separately in the class table (they are looked up independently so
    /// annotation precision never changes behaviour, §5.4).
    pub fn register_native(
        &mut self,
        owner: ClassId,
        kind: MethodKind,
        name: &str,
        body: NativeImpl,
    ) {
        self.natives
            .insert(NativeKey(owner, kind, Symbol::intern(name)), body);
    }

    /// Finds the body for `name` on `class`, walking the superclass chain.
    pub fn find_native(
        &self,
        class: ClassId,
        kind: MethodKind,
        name: Symbol,
    ) -> Option<&NativeImpl> {
        for c in self.table.hierarchy.ancestry(class) {
            if let Some(n) = self.natives.get(&NativeKey(c, kind, name)) {
                return Some(n);
            }
        }
        None
    }

    /// Binds a model class to its backing table.
    pub fn register_model(&mut self, class: ClassId, table: TableId) {
        self.models.insert(class, table);
    }

    /// Backing table of a model class, walking the superclass chain (STI-
    /// style lookup; in practice each model has its own table).
    pub fn model_table(&self, class: ClassId) -> Option<TableId> {
        for c in self.table.hierarchy.ancestry(class) {
            if let Some(t) = self.models.get(&c) {
                return Some(*t);
            }
        }
        None
    }

    /// The runtime class of a value (`Class` values dispatch as singletons
    /// and have no instance class here).
    pub fn value_class(&self, state: &WorldState, v: &Value) -> Option<ClassId> {
        let h = &self.table.hierarchy;
        Some(match v {
            Value::Nil => h.nil_class(),
            Value::Bool(_) => h.boolean(),
            Value::Int(_) => h.integer(),
            Value::Str(_) => h.string(),
            Value::Sym(_) => h.symbol(),
            Value::Hash(_) => h.hash(),
            Value::Array(_) => h.array(),
            Value::Obj(r) => state.obj(*r).class,
            Value::Class(_) => return None,
        })
    }
}

/// A heap object `[A]`: its class, instance variables, and — for model
/// instances — the database row it fronts.
#[derive(Clone, Debug)]
pub struct ObjData {
    /// Class of the object.
    pub class: ClassId,
    /// Instance variables (non-model state).
    pub ivars: HashMap<Symbol, Value>,
    /// Model binding: reads/writes of column accessors go through this row.
    pub row: Option<(TableId, RowId)>,
}

/// The mutable per-run state: a database snapshot, a heap, and globals.
///
/// Built fresh from the environment before each candidate run.
#[derive(Clone)]
pub struct WorldState {
    /// The run's private database.
    pub db: Database,
    heap: Vec<ObjData>,
    /// Global key-value state (simulates app-level singletons like
    /// Discourse's site settings).
    pub globals: HashMap<Symbol, Value>,
}

impl WorldState {
    /// A fresh state from the environment's database template.
    pub fn fresh(env: &InterpEnv) -> WorldState {
        WorldState {
            db: env.db_template.clone(),
            heap: Vec::new(),
            globals: HashMap::new(),
        }
    }

    /// Allocates a heap object.
    pub fn alloc(&mut self, data: ObjData) -> ObjRef {
        let r = ObjRef(self.heap.len() as u32);
        self.heap.push(data);
        r
    }

    /// Allocates a model instance fronting `row` of `table`.
    pub fn alloc_model(&mut self, class: ClassId, table: TableId, row: RowId) -> Value {
        let r = self.alloc(ObjData {
            class,
            ivars: HashMap::new(),
            row: Some((table, row)),
        });
        Value::Obj(r)
    }

    /// Shared access to a heap object.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a reference into this heap.
    pub fn obj(&self, r: ObjRef) -> &ObjData {
        &self.heap[r.index()]
    }

    /// Mutable access to a heap object.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a reference into this heap.
    pub fn obj_mut(&mut self, r: ObjRef) -> &mut ObjData {
        &mut self.heap[r.index()]
    }

    /// The database row a model value fronts, if any.
    pub fn model_row(&self, v: &Value) -> Option<(TableId, RowId)> {
        match v {
            Value::Obj(r) => self.obj(*r).row,
            _ => None,
        }
    }

    /// Heap size (for tests).
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_db::TableSchema;
    use rbsyn_ty::ClassHierarchy;

    fn env_with_post() -> (InterpEnv, ClassId, TableId) {
        let mut h = ClassHierarchy::new();
        let base = h.define("ActiveRecord::Base", None);
        let post = h.define("Post", Some(base));
        let table = ClassTable::new(h);
        let mut db = Database::new();
        let posts = db.create_table(TableSchema::new("posts", ["title"]));
        let mut env = InterpEnv::new(table, db);
        env.register_model(post, posts);
        (env, post, posts)
    }

    #[test]
    fn fresh_state_clones_template() {
        let (mut env, _, posts) = env_with_post();
        env.db_template
            .table_mut(posts)
            .insert(vec![(Symbol::intern("title"), Value::str("seeded"))]);
        let s1 = WorldState::fresh(&env);
        let mut s2 = WorldState::fresh(&env);
        s2.db.table_mut(posts).insert(vec![]);
        assert_eq!(s1.db.table(posts).len(), 1);
        assert_eq!(s2.db.table(posts).len(), 2);
        assert_eq!(WorldState::fresh(&env).db.table(posts).len(), 1);
    }

    #[test]
    fn model_alloc_binds_rows() {
        let (env, post, posts) = env_with_post();
        let mut state = WorldState::fresh(&env);
        let row = state.db.table_mut(posts).insert(vec![]);
        let v = state.alloc_model(post, posts, row);
        assert_eq!(state.model_row(&v), Some((posts, row)));
        assert_eq!(env.value_class(&state, &v), Some(post));
    }

    #[test]
    fn value_classes() {
        let (env, _, _) = env_with_post();
        let state = WorldState::fresh(&env);
        let h = &env.table.hierarchy;
        assert_eq!(env.value_class(&state, &Value::Nil), Some(h.nil_class()));
        assert_eq!(env.value_class(&state, &Value::Int(3)), Some(h.integer()));
        assert_eq!(env.value_class(&state, &Value::Class(h.hash())), None);
    }

    #[test]
    fn native_lookup_walks_ancestry() {
        let (mut env, post, _) = env_with_post();
        let base = env.table.hierarchy.find("ActiveRecord::Base").unwrap();
        env.register_native(
            base,
            MethodKind::Singleton,
            "exists?",
            Arc::new(|_, _, _, _| Ok(Value::Bool(true))),
        );
        assert!(env
            .find_native(post, MethodKind::Singleton, Symbol::intern("exists?"))
            .is_some());
        assert!(env
            .find_native(post, MethodKind::Instance, Symbol::intern("exists?"))
            .is_none());
    }

    #[test]
    fn model_table_walks_ancestry() {
        let (env, post, posts) = env_with_post();
        assert_eq!(env.model_table(post), Some(posts));
        let h = &env.table.hierarchy;
        assert_eq!(env.model_table(h.integer()), None);
    }
}
