//! Worlds: the immutable interpretation environment and the mutable
//! per-run state.

use crate::error::RuntimeError;
use rbsyn_db::{Database, RowId, TableId};
use rbsyn_lang::{unordered_obs_fold, ClassId, ObjRef, ObsHasher, Symbol, Value};
use rbsyn_ty::{ClassTable, MethodKind};
use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Implementation of a native (library) method.
///
/// Natives are leaf operations — database queries, string/integer
/// primitives, accessor reads/writes — so they receive the environment and
/// raw state rather than a full evaluator.
pub type NativeImpl = Arc<
    dyn Fn(&InterpEnv, &mut WorldState, &Value, &[Value]) -> Result<Value, RuntimeError>
        + Send
        + Sync,
>;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct NativeKey(ClassId, MethodKind, Symbol);

/// The immutable interpretation environment: type-and-effect annotations
/// (the class table `CT`), native method bodies, model↔table bindings, and
/// the pristine database every run starts from.
#[derive(Clone)]
pub struct InterpEnv {
    /// Class table with annotations; also owns the class hierarchy.
    pub table: ClassTable,
    natives: HashMap<NativeKey, NativeImpl>,
    models: HashMap<ClassId, TableId>,
    /// Database template cloned into every fresh [`WorldState`].
    pub db_template: Database,
    /// Watchdog kill flag: when set, evaluators over this environment
    /// abort with [`RuntimeError::Interrupted`] at their next stride
    /// check (see [`crate::eval::Evaluator`]). `None` (the default) costs
    /// nothing on the eval path beyond the stride branch.
    interrupt: Option<Arc<AtomicBool>>,
}

impl InterpEnv {
    /// Builds an environment over a class table and a database template.
    pub fn new(table: ClassTable, db_template: Database) -> InterpEnv {
        InterpEnv {
            table,
            natives: HashMap::new(),
            models: HashMap::new(),
            db_template,
            interrupt: None,
        }
    }

    /// Attaches a watchdog kill flag: evaluation under this environment
    /// aborts with [`RuntimeError::Interrupted`] soon after the flag is
    /// set, even mid-candidate. The synthesizer installs the run's
    /// watchdog flag here before sharing the environment with its tasks.
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// The installed watchdog kill flag, if any.
    pub fn interrupt_flag(&self) -> Option<&Arc<AtomicBool>> {
        self.interrupt.as_ref()
    }

    /// Registers the body of a method; the annotation must be registered
    /// separately in the class table (they are looked up independently so
    /// annotation precision never changes behaviour, §5.4).
    pub fn register_native(
        &mut self,
        owner: ClassId,
        kind: MethodKind,
        name: &str,
        body: NativeImpl,
    ) {
        self.natives
            .insert(NativeKey(owner, kind, Symbol::intern(name)), body);
    }

    /// Finds the body for `name` on `class`, walking the superclass chain.
    pub fn find_native(
        &self,
        class: ClassId,
        kind: MethodKind,
        name: Symbol,
    ) -> Option<&NativeImpl> {
        for c in self.table.hierarchy.ancestry(class) {
            if let Some(n) = self.natives.get(&NativeKey(c, kind, name)) {
                return Some(n);
            }
        }
        None
    }

    /// Binds a model class to its backing table.
    pub fn register_model(&mut self, class: ClassId, table: TableId) {
        self.models.insert(class, table);
    }

    /// Backing table of a model class, walking the superclass chain (STI-
    /// style lookup; in practice each model has its own table).
    pub fn model_table(&self, class: ClassId) -> Option<TableId> {
        for c in self.table.hierarchy.ancestry(class) {
            if let Some(t) = self.models.get(&c) {
                return Some(*t);
            }
        }
        None
    }

    /// The runtime class of a value (`Class` values dispatch as singletons
    /// and have no instance class here).
    pub fn value_class(&self, state: &WorldState, v: &Value) -> Option<ClassId> {
        let h = &self.table.hierarchy;
        Some(match v {
            Value::Nil => h.nil_class(),
            Value::Bool(_) => h.boolean(),
            Value::Int(_) => h.integer(),
            Value::Str(_) => h.string(),
            Value::Sym(_) => h.symbol(),
            Value::Hash(_) => h.hash(),
            Value::Array(_) => h.array(),
            Value::Obj(r) => state.obj(*r).class,
            Value::Class(_) => return None,
        })
    }
}

/// A heap object `[A]`: its class, instance variables, and — for model
/// instances — the database row it fronts.
#[derive(Clone, Debug)]
pub struct ObjData {
    /// Class of the object.
    pub class: ClassId,
    /// Instance variables (non-model state).
    pub ivars: HashMap<Symbol, Value>,
    /// Model binding: reads/writes of column accessors go through this row.
    pub row: Option<(TableId, RowId)>,
}

/// A copy-on-write object heap.
///
/// A prepared spec's snapshot heap is *frozen* into the shared `base`; a
/// candidate run clones the heap (one `Arc` bump), allocates new objects
/// into `extra`, and mutations of base objects land in the `dirty` overlay
/// — so forking the heap for a run never copies the snapshot's objects,
/// and a run's footprint is exactly what it touched.
#[derive(Clone, Default)]
struct Heap {
    /// Frozen snapshot slots, shared between all forks.
    base: Arc<Vec<ObjData>>,
    /// Slots allocated after the freeze (`base.len()..`).
    extra: Vec<ObjData>,
    /// Copy-on-write overlay for mutated base slots.
    dirty: HashMap<u32, ObjData>,
}

impl Heap {
    fn len(&self) -> usize {
        self.base.len() + self.extra.len()
    }

    fn get(&self, i: usize) -> &ObjData {
        if i < self.base.len() {
            self.dirty.get(&(i as u32)).unwrap_or_else(|| &self.base[i])
        } else {
            &self.extra[i - self.base.len()]
        }
    }

    fn get_mut(&mut self, i: usize) -> &mut ObjData {
        if i < self.base.len() {
            let base = &self.base;
            self.dirty
                .entry(i as u32)
                .or_insert_with(|| base[i].clone())
        } else {
            let off = self.base.len();
            &mut self.extra[i - off]
        }
    }

    fn push(&mut self, data: ObjData) -> usize {
        self.extra.push(data);
        self.len() - 1
    }

    /// Collapses overlay and extras into a fresh shared base, so clones of
    /// this heap fork in O(1).
    fn freeze(&mut self) {
        if self.dirty.is_empty() && self.extra.is_empty() {
            return;
        }
        let mut flat: Vec<ObjData> = Vec::with_capacity(self.len());
        for i in 0..self.base.len() {
            flat.push(self.get(i).clone());
        }
        flat.append(&mut self.extra);
        self.dirty.clear();
        self.base = Arc::new(flat);
    }
}

/// The mutable per-run state: a database snapshot, a heap, and globals.
///
/// Built fresh from the environment before each candidate run. Both the
/// database and the heap are copy-on-write, so cloning a prepared
/// snapshot — the per-candidate fork on the oracle hot path — costs a few
/// refcount bumps plus the (usually empty) globals map.
#[derive(Clone)]
pub struct WorldState {
    /// The run's private database.
    pub db: Database,
    heap: Heap,
    /// Global key-value state (simulates app-level singletons like
    /// Discourse's site settings).
    pub globals: HashMap<Symbol, Value>,
}

impl WorldState {
    /// A fresh state from the environment's database template.
    pub fn fresh(env: &InterpEnv) -> WorldState {
        WorldState {
            db: env.db_template.clone(),
            heap: Heap::default(),
            globals: HashMap::new(),
        }
    }

    /// Allocates a heap object.
    pub fn alloc(&mut self, data: ObjData) -> ObjRef {
        ObjRef(self.heap.push(data) as u32)
    }

    /// Allocates a model instance fronting `row` of `table`.
    pub fn alloc_model(&mut self, class: ClassId, table: TableId, row: RowId) -> Value {
        let r = self.alloc(ObjData {
            class,
            ivars: HashMap::new(),
            row: Some((table, row)),
        });
        Value::Obj(r)
    }

    /// Shared access to a heap object.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a reference into this heap.
    pub fn obj(&self, r: ObjRef) -> &ObjData {
        self.heap.get(r.index())
    }

    /// Mutable access to a heap object (the heap's copy-on-write point).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a reference into this heap.
    pub fn obj_mut(&mut self, r: ObjRef) -> &mut ObjData {
        self.heap.get_mut(r.index())
    }

    /// The database row a model value fronts, if any.
    pub fn model_row(&self, v: &Value) -> Option<(TableId, RowId)> {
        match v {
            Value::Obj(r) => self.obj(*r).row,
            _ => None,
        }
    }

    /// Heap size (for tests).
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Collapses copy-on-write layers so future clones of this state fork
    /// in O(1). Called once per prepared spec, after setup ran.
    pub fn freeze(&mut self) {
        self.heap.freeze();
    }

    /// Deterministic digest of this state's *divergence* from `base` (the
    /// snapshot it was forked from) — the state component of an evaluation
    /// vector.
    ///
    /// Copy-on-write makes this cheap *and* comparable: database tables
    /// and the heap base still shared with the snapshot digest as constant
    /// markers; only written tables, dirty heap slots, run-allocated
    /// objects and globals are content-hashed (identifiers by string, see
    /// [`ObsHasher`]). Two runs forked from the **same** snapshot get
    /// equal digests iff they left the world in the same observable state
    /// (modulo the false-*negative* of a run rewriting a table to its
    /// original contents, which costs pruning power, never soundness).
    pub fn obs_fingerprint(&self, base: &WorldState) -> u128 {
        let mut h = ObsHasher::new();
        h.put_u64(self.db.table_count() as u64);
        for i in 0..self.db.table_count() {
            let id = TableId(i as u32);
            if self.db.shares_table(&base.db, id) {
                h.put_u64(0);
            } else {
                h.put_u64(1);
                self.db.table(id).obs_hash(&mut h);
            }
        }
        if Arc::ptr_eq(&self.heap.base, &base.heap.base) {
            h.put_u64(0);
        } else {
            // Forked from a different snapshot: digest the full base. Runs
            // against the same prepared spec never take this branch.
            h.put_u64(1);
            h.put_u64(self.heap.base.len() as u64);
            for o in self.heap.base.iter() {
                obs_hash_obj(&mut h, o);
            }
        }
        let mut dirty: Vec<u32> = self.heap.dirty.keys().copied().collect();
        dirty.sort_unstable();
        h.put_u64(dirty.len() as u64);
        for i in dirty {
            h.put_u64(u64::from(i));
            obs_hash_obj(&mut h, &self.heap.dirty[&i]);
        }
        h.put_u64(self.heap.extra.len() as u64);
        for o in &self.heap.extra {
            obs_hash_obj(&mut h, o);
        }
        h.put_u128(unordered_obs_fold(self.globals.iter(), |h, (k, v)| {
            h.put_symbol(*k);
            h.put_value(v);
        }));
        h.finish128()
    }
}

/// Folds one heap object into an observation digest (ivar maps are
/// unordered, so they get the order-independent combine).
fn obs_hash_obj(h: &mut ObsHasher, o: &ObjData) {
    h.put_class(o.class);
    match o.row {
        Some((t, r)) => {
            h.put_u64(1);
            h.put_u64(u64::from(t.0));
            h.put_i64(r.0);
        }
        None => h.put_u64(0),
    }
    h.put_u128(unordered_obs_fold(o.ivars.iter(), |h, (k, v)| {
        h.put_symbol(*k);
        h.put_value(v);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_db::TableSchema;
    use rbsyn_ty::ClassHierarchy;

    fn env_with_post() -> (InterpEnv, ClassId, TableId) {
        let mut h = ClassHierarchy::new();
        let base = h.define("ActiveRecord::Base", None);
        let post = h.define("Post", Some(base));
        let table = ClassTable::new(h);
        let mut db = Database::new();
        let posts = db.create_table(TableSchema::new("posts", ["title"]));
        let mut env = InterpEnv::new(table, db);
        env.register_model(post, posts);
        (env, post, posts)
    }

    #[test]
    fn fresh_state_clones_template() {
        let (mut env, _, posts) = env_with_post();
        env.db_template
            .table_mut(posts)
            .insert(vec![(Symbol::intern("title"), Value::str("seeded"))]);
        let s1 = WorldState::fresh(&env);
        let mut s2 = WorldState::fresh(&env);
        s2.db.table_mut(posts).insert(vec![]);
        assert_eq!(s1.db.table(posts).len(), 1);
        assert_eq!(s2.db.table(posts).len(), 2);
        assert_eq!(WorldState::fresh(&env).db.table(posts).len(), 1);
    }

    #[test]
    fn model_alloc_binds_rows() {
        let (env, post, posts) = env_with_post();
        let mut state = WorldState::fresh(&env);
        let row = state.db.table_mut(posts).insert(vec![]);
        let v = state.alloc_model(post, posts, row);
        assert_eq!(state.model_row(&v), Some((posts, row)));
        assert_eq!(env.value_class(&state, &v), Some(post));
    }

    #[test]
    fn value_classes() {
        let (env, _, _) = env_with_post();
        let state = WorldState::fresh(&env);
        let h = &env.table.hierarchy;
        assert_eq!(env.value_class(&state, &Value::Nil), Some(h.nil_class()));
        assert_eq!(env.value_class(&state, &Value::Int(3)), Some(h.integer()));
        assert_eq!(env.value_class(&state, &Value::Class(h.hash())), None);
    }

    #[test]
    fn native_lookup_walks_ancestry() {
        let (mut env, post, _) = env_with_post();
        let base = env.table.hierarchy.find("ActiveRecord::Base").unwrap();
        env.register_native(
            base,
            MethodKind::Singleton,
            "exists?",
            Arc::new(|_, _, _, _| Ok(Value::Bool(true))),
        );
        assert!(env
            .find_native(post, MethodKind::Singleton, Symbol::intern("exists?"))
            .is_some());
        assert!(env
            .find_native(post, MethodKind::Instance, Symbol::intern("exists?"))
            .is_none());
    }

    #[test]
    fn model_table_walks_ancestry() {
        let (env, post, posts) = env_with_post();
        assert_eq!(env.model_table(post), Some(posts));
        let h = &env.table.hierarchy;
        assert_eq!(env.model_table(h.integer()), None);
    }

    #[test]
    fn frozen_heap_forks_are_isolated() {
        let (env, post, posts) = env_with_post();
        let mut snap = WorldState::fresh(&env);
        let row = snap.db.table_mut(posts).insert(vec![]);
        let v = snap.alloc_model(post, posts, row);
        snap.freeze();
        let Value::Obj(r) = v else { unreachable!() };
        // Two forks: one mutates the snapshot object, one allocates more.
        let mut a = snap.clone();
        a.obj_mut(r)
            .ivars
            .insert(Symbol::intern("x"), Value::Int(1));
        let mut b = snap.clone();
        let extra = b.alloc(ObjData {
            class: post,
            ivars: HashMap::new(),
            row: None,
        });
        assert_eq!(
            a.obj(r).ivars.get(&Symbol::intern("x")),
            Some(&Value::Int(1))
        );
        assert!(snap.obj(r).ivars.is_empty(), "the snapshot is untouched");
        assert!(b.obj(r).ivars.is_empty());
        assert_eq!(b.heap_len(), 2);
        assert_eq!(extra.index(), 1);
        assert_eq!(a.heap_len(), 1);
    }

    #[test]
    fn obs_fingerprint_separates_observable_outcomes() {
        let (env, post, posts) = env_with_post();
        let mut snap = WorldState::fresh(&env);
        let row = snap.db.table_mut(posts).insert(vec![]);
        snap.alloc_model(post, posts, row);
        snap.freeze();

        // An untouched fork digests like another untouched fork.
        let a = snap.clone();
        let b = snap.clone();
        assert_eq!(a.obs_fingerprint(&snap), b.obs_fingerprint(&snap));

        // Same mutation → same digest; different mutation → different.
        let title = Symbol::intern("title");
        let mut c = snap.clone();
        c.db.table_mut(posts).set(row, title, Value::str("X"));
        let mut d = snap.clone();
        d.db.table_mut(posts).set(row, title, Value::str("X"));
        let mut e = snap.clone();
        e.db.table_mut(posts).set(row, title, Value::str("Y"));
        assert_eq!(c.obs_fingerprint(&snap), d.obs_fingerprint(&snap));
        assert_ne!(c.obs_fingerprint(&snap), e.obs_fingerprint(&snap));
        assert_ne!(a.obs_fingerprint(&snap), c.obs_fingerprint(&snap));

        // Globals and fresh allocations are observable too.
        let mut g = snap.clone();
        g.globals.insert(Symbol::intern("flag"), Value::Bool(true));
        assert_ne!(a.obs_fingerprint(&snap), g.obs_fingerprint(&snap));
        let mut al = snap.clone();
        al.alloc(ObjData {
            class: post,
            ivars: HashMap::new(),
            row: None,
        });
        assert_ne!(a.obs_fingerprint(&snap), al.obs_fingerprint(&snap));
    }
}
