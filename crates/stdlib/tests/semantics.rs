//! Operational-semantics integration tests: the behaviours of Fig. 9/10
//! that the synthesizer depends on, exercised through the public API.

use rbsyn_interp::eval::Locals;
use rbsyn_interp::{
    run_spec, Evaluator, InterpEnv, PreparedSpec, RuntimeError, SetupStep, Spec, SpecOutcome,
    WorldState,
};
use rbsyn_lang::builder::*;
use rbsyn_lang::{Effect, EffectPair, EffectSet, Program, Symbol, Ty, Value};
use rbsyn_stdlib::EnvBuilder;

fn blog() -> (InterpEnv, rbsyn_lang::ClassId) {
    let mut b = EnvBuilder::with_stdlib();
    let post = b.define_model(
        "Post",
        &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
    );
    (b.finish(), post)
}

#[test]
fn effect_collection_matches_the_annotations_read() {
    // assert `xr.title == "T"` reads exactly Post.title (plus the pure ==).
    let (env, post) = blog();
    let spec = Spec::new(
        "title must be T",
        vec![
            SetupStep::Exec(call(cls(post), "create", [hash([("title", str_("X"))])])),
            SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            },
        ],
        vec![call(call(var("xr"), "title", []), "==", [str_("T")])],
    );
    let candidate = Program::new("m", [], call(cls(post), "first", []));
    match run_spec(&env, &spec, &candidate) {
        SpecOutcome::Failed { passed, effects } => {
            assert_eq!(passed, 0);
            assert_eq!(
                effects.read,
                EffectSet::single(Effect::Region(post, Symbol::intern("title")))
            );
            assert!(effects.write.is_pure());
        }
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn failing_later_asserts_report_only_their_own_effects() {
    // First assert passes reading Post.author; second fails reading
    // Post.slug — only the slug region must be reported (E-SeqVal resets).
    let (env, post) = blog();
    let spec = Spec::new(
        "author ok, slug wrong",
        vec![
            SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("a")), ("slug", str_("s"))])],
            )),
            SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            },
        ],
        vec![
            call(call(var("xr"), "author", []), "==", [str_("a")]),
            call(call(var("xr"), "slug", []), "==", [str_("WRONG")]),
        ],
    );
    let candidate = Program::new("m", [], call(cls(post), "first", []));
    match run_spec(&env, &spec, &candidate) {
        SpecOutcome::Failed { passed, effects } => {
            assert_eq!(passed, 1);
            assert_eq!(
                effects.read,
                EffectSet::single(Effect::Region(post, Symbol::intern("slug")))
            );
        }
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn candidate_writes_are_visible_to_asserts_within_one_run_only() {
    let (env, post) = blog();
    let spec = Spec::new(
        "candidate must set the title",
        vec![
            SetupStep::Bind(
                "p".into(),
                call(cls(post), "create", [hash([("title", str_("old"))])]),
            ),
            SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            },
        ],
        vec![call(call(var("p"), "title", []), "==", [str_("new")])],
    );
    let writer = Program::new(
        "m",
        [],
        call(call(cls(post), "first", []), "title=", [str_("new")]),
    );
    // Passes, repeatedly — each run starts from the snapshot, so state
    // never leaks across candidate evaluations.
    for _ in 0..3 {
        assert!(run_spec(&env, &spec, &writer).passed());
    }
    let noop = Program::new("m", [], nil());
    assert!(!run_spec(&env, &spec, &noop).passed());
}

#[test]
fn prepared_specs_replay_deterministically() {
    let (env, post) = blog();
    let spec = Spec::new(
        "count is stable",
        vec![
            SetupStep::Exec(call(cls(post), "create", [hash([])])),
            SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            },
        ],
        vec![call(call(cls(post), "count", []), "==", [int(1)])],
    );
    let prepared = PreparedSpec::prepare(&env, &spec).expect("setup is sound");
    let create_one = Program::new("m", [], call(cls(post), "create", [hash([])]));
    let noop = Program::new("m", [], nil());
    // The creating candidate makes the count 2 → fail; the noop passes;
    // alternating runs prove snapshot isolation.
    for _ in 0..3 {
        assert!(!prepared.run(&env, &create_one).passed());
        assert!(prepared.run(&env, &noop).passed());
    }
}

#[test]
fn model_equality_is_by_row_not_by_reference() {
    let (env, post) = blog();
    let mut st = WorldState::fresh(&env);
    let mut ev = Evaluator::new(&env, &mut st);
    let mut locals = Locals::new();
    let e = let_(
        "a",
        call(cls(post), "create", [hash([("slug", str_("s"))])]),
        let_(
            "b",
            call(cls(post), "find_by", [hash([("slug", str_("s"))])]),
            seq([call(var("a"), "==", [var("b")])]),
        ),
    );
    assert_eq!(ev.eval(&mut locals, &e).unwrap(), Value::Bool(true));
}

#[test]
fn nil_receivers_raise_ruby_style() {
    let (env, post) = blog();
    let mut st = WorldState::fresh(&env);
    let mut ev = Evaluator::new(&env, &mut st);
    let mut locals = Locals::new();
    // find_by on an empty table is nil; reading an attribute then raises.
    let e = call(
        call(cls(post), "find_by", [hash([("slug", str_("none"))])]),
        "title",
        [],
    );
    match ev.eval(&mut locals, &e) {
        Err(RuntimeError::NoMethod { class_name, .. }) => assert_eq!(class_name, "NilClass"),
        other => panic!("expected NoMethodError, got {other:?}"),
    }
    // But nil? is safe on nil.
    let ok = call(
        call(cls(post), "find_by", [hash([("slug", str_("none"))])]),
        "nil?",
        [],
    );
    assert_eq!(ev.eval(&mut locals, &ok).unwrap(), Value::Bool(true));
}

#[test]
fn tracking_resolves_self_regions_at_the_receiver_class() {
    let (env, post) = blog();
    let mut st = WorldState::fresh(&env);
    let mut ev = Evaluator::new(&env, &mut st);
    ev.tracker = Some(EffectPair::pure_());
    let mut locals = Locals::new();
    ev.eval(&mut locals, &call(cls(post), "exists?", []))
        .unwrap();
    let collected = ev.tracker.take().unwrap();
    assert_eq!(collected.read, EffectSet::single(Effect::ClassStar(post)));
}

#[test]
fn purity_precision_coarsens_collected_effects() {
    let (mut env, post) = blog();
    env.table.set_precision(rbsyn_ty::EffectPrecision::Purity);
    let spec = Spec::new(
        "title check under purity labels",
        vec![
            SetupStep::Exec(call(cls(post), "create", [hash([("title", str_("X"))])])),
            SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            },
        ],
        vec![call(call(var("xr"), "title", []), "==", [str_("T")])],
    );
    let candidate = Program::new("m", [], call(cls(post), "first", []));
    match run_spec(&env, &spec, &candidate) {
        SpecOutcome::Failed { effects, .. } => {
            assert!(effects.read.is_star(), "purity labels collapse reads to *");
        }
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn extra_setup_steps_after_the_call_still_run() {
    let (env, post) = blog();
    let spec = Spec::new(
        "post-call seeding",
        vec![
            SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            },
            SetupStep::Exec(call(cls(post), "create", [hash([])])),
        ],
        vec![call(call(cls(post), "count", []), "==", [int(1)])],
    );
    let noop = Program::new("m", [], nil());
    assert!(run_spec(&env, &spec, &noop).passed());
}
