//! Behavioural tests across the annotated library: Ruby-faithful edge
//! cases for the methods the benchmarks rely on.

use rbsyn_interp::eval::Locals;
use rbsyn_interp::{Evaluator, InterpEnv, RuntimeError, WorldState};
use rbsyn_lang::builder::*;
use rbsyn_lang::{Expr, Ty, Value};
use rbsyn_stdlib::EnvBuilder;

fn env() -> InterpEnv {
    let mut b = EnvBuilder::with_stdlib();
    b.define_model("Post", &[("author", Ty::Str), ("title", Ty::Str)]);
    b.finish()
}

fn eval(env: &InterpEnv, e: &Expr) -> Result<Value, RuntimeError> {
    let mut st = WorldState::fresh(env);
    let mut ev = Evaluator::new(env, &mut st);
    ev.eval(&mut Locals::new(), e)
}

#[test]
fn string_edge_cases() {
    let env = env();
    assert_eq!(
        eval(&env, &call(str_(""), "capitalize", [])).unwrap(),
        Value::str("")
    );
    assert_eq!(
        eval(&env, &call(str_(""), "reverse", [])).unwrap(),
        Value::str("")
    );
    assert_eq!(
        eval(&env, &call(str_("a\n"), "chomp", [])).unwrap(),
        Value::str("a")
    );
    assert_eq!(
        eval(&env, &call(str_("a"), "chomp", [])).unwrap(),
        Value::str("a")
    );
    assert_eq!(
        eval(&env, &call(str_("abc"), "include?", [str_("")])).unwrap(),
        Value::Bool(true),
        "every string includes the empty string"
    );
    assert_eq!(
        eval(&env, &call(str_("héllo"), "length", [])).unwrap(),
        Value::Int(5),
        "length counts characters, not bytes"
    );
    assert_eq!(
        eval(&env, &call(str_("  "), "present?", [])).unwrap(),
        Value::Bool(false),
        "whitespace-only strings are blank in Rails"
    );
}

#[test]
fn integer_edge_cases() {
    let env = env();
    assert_eq!(
        eval(&env, &call(int(-7), "abs", [])).unwrap(),
        Value::Int(7)
    );
    assert_eq!(
        eval(&env, &call(int(-3), "%", [int(2)])).unwrap(),
        Value::Int(1),
        "Ruby modulo is non-negative for positive divisors"
    );
    assert_eq!(
        eval(&env, &call(int(0), "even?", [])).unwrap(),
        Value::Bool(true)
    );
    assert_eq!(
        eval(&env, &call(int(-1), "negative?", [])).unwrap(),
        Value::Bool(true)
    );
    assert_eq!(
        eval(&env, &call(int(i64::MAX), "succ", [])).unwrap(),
        Value::Int(i64::MIN),
        "wrapping arithmetic, documented substrate choice"
    );
}

#[test]
fn comparison_operators_reject_missing_args() {
    let env = env();
    for op in ["<", ">", "<=", ">=", "==", "!="] {
        assert!(matches!(
            eval(&env, &call(int(1), op, [])),
            Err(RuntimeError::ArgCount { .. })
        ));
    }
}

#[test]
fn hash_methods_on_empty_hashes() {
    let env = env();
    let h = hash([]);
    assert_eq!(
        eval(&env, &call(h.clone(), "empty?", [])).unwrap(),
        Value::Bool(true)
    );
    assert_eq!(
        eval(&env, &call(h.clone(), "size", [])).unwrap(),
        Value::Int(0)
    );
    assert_eq!(
        eval(&env, &call(h.clone(), "keys", [])).unwrap(),
        Value::Array(vec![])
    );
    assert_eq!(
        eval(&env, &call(h, "key?", [sym("a")])).unwrap(),
        Value::Bool(false)
    );
}

#[test]
fn model_queries_on_empty_tables() {
    let env = env();
    let post = env.table.hierarchy.find("Post").unwrap();
    assert_eq!(
        eval(&env, &call(cls(post), "count", [])).unwrap(),
        Value::Int(0)
    );
    assert_eq!(
        eval(&env, &call(cls(post), "first", [])).unwrap(),
        Value::Nil
    );
    assert_eq!(
        eval(&env, &call(cls(post), "last", [])).unwrap(),
        Value::Nil
    );
    assert_eq!(
        eval(&env, &call(cls(post), "all", [])).unwrap(),
        Value::Array(vec![])
    );
    assert_eq!(
        eval(&env, &call(cls(post), "exists?", [])).unwrap(),
        Value::Bool(false)
    );
}

#[test]
fn where_returns_live_records() {
    let env = env();
    let post = env.table.hierarchy.find("Post").unwrap();
    let e = seq([
        call(
            cls(post),
            "create",
            [hash([("author", str_("a")), ("title", str_("t1"))])],
        ),
        call(
            cls(post),
            "create",
            [hash([("author", str_("a")), ("title", str_("t2"))])],
        ),
        call(
            cls(post),
            "create",
            [hash([("author", str_("b")), ("title", str_("t3"))])],
        ),
        call(
            call(cls(post), "where", [hash([("author", str_("a"))])]),
            "size",
            [],
        ),
    ]);
    assert_eq!(eval(&env, &e).unwrap(), Value::Int(2));
    // Writing through a where-result is visible to later queries.
    let e2 = seq([
        call(cls(post), "create", [hash([("author", str_("a"))])]),
        call(
            call(
                call(cls(post), "where", [hash([("author", str_("a"))])]),
                "first",
                [],
            ),
            "title=",
            [str_("patched")],
        ),
        call(cls(post), "exists?", [hash([("title", str_("patched"))])]),
    ]);
    assert_eq!(eval(&env, &e2).unwrap(), Value::Bool(true));
}

#[test]
fn update_with_unknown_columns_raises() {
    let env = env();
    let post = env.table.hierarchy.find("Post").unwrap();
    let e = let_(
        "t0",
        call(cls(post), "create", [hash([])]),
        call(var("t0"), "update!", [hash([("nope", str_("x"))])]),
    );
    assert!(matches!(eval(&env, &e), Err(RuntimeError::RecordError(_))));
}

#[test]
fn persistence_predicates_track_destroy() {
    let env = env();
    let post = env.table.hierarchy.find("Post").unwrap();
    let e = let_(
        "t0",
        call(cls(post), "create", [hash([])]),
        seq([
            call(var("t0"), "persisted?", []),
            call(var("t0"), "destroy", []),
            call(var("t0"), "persisted?", []),
        ]),
    );
    assert_eq!(eval(&env, &e).unwrap(), Value::Bool(false));
}

#[test]
fn search_visible_counts_are_stable() {
    // The library surface is part of the evaluation setup (Table 1's
    // "# Lib Meth"); keep a regression floor under it.
    let env = env();
    let n = env.table.search_visible_count();
    assert!(n >= 90, "library shrank: {n}");
    // Never-enumerated methods exist (Object#== etc.) but still dispatch.
    assert!(env.table.len() > n);
}
