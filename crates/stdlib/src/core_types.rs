//! Core Ruby classes: `Object`, `NilClass`, `Boolean`, `Integer`, `String`,
//! `Symbol` — each method implemented natively and annotated (all pure).

use crate::{eff, ruby_eq, EnvBuilder};
use rbsyn_interp::{InterpEnv, NativeImpl, RuntimeError, WorldState};
use rbsyn_lang::{Symbol, Ty, Value};
use rbsyn_ty::EnumerateAt::{Never, OwnerOnly};
use rbsyn_ty::MethodKind::Instance;
use std::sync::Arc;

/// Wraps a closure as a [`NativeImpl`].
pub fn nat<F>(f: F) -> NativeImpl
where
    F: Fn(&InterpEnv, &mut WorldState, &Value, &[Value]) -> Result<Value, RuntimeError>
        + Send
        + Sync
        + 'static,
{
    Arc::new(f)
}

/// Arity check.
pub fn need(args: &[Value], n: usize, name: &str) -> Result<(), RuntimeError> {
    if args.len() != n {
        return Err(RuntimeError::ArgCount {
            name: Symbol::intern(name),
            expected: n,
            got: args.len(),
        });
    }
    Ok(())
}

/// Extracts an integer argument.
pub fn as_int(v: &Value, name: &str) -> Result<i64, RuntimeError> {
    match v {
        Value::Int(i) => Ok(*i),
        _ => Err(RuntimeError::TypeMismatch {
            name: Symbol::intern(name),
            expected: "Integer",
        }),
    }
}

/// Extracts a string argument.
pub fn as_str(v: &Value, name: &str) -> Result<std::sync::Arc<str>, RuntimeError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(RuntimeError::TypeMismatch {
            name: Symbol::intern(name),
            expected: "String",
        }),
    }
}

/// Is a value Rails-`present?` (not nil, not false, not empty string/array/hash)?
fn present(v: &Value) -> bool {
    match v {
        Value::Nil | Value::Bool(false) => false,
        Value::Str(s) => !s.trim().is_empty(),
        Value::Array(a) => !a.is_empty(),
        Value::Hash(h) => !h.is_empty(),
        _ => true,
    }
}

pub(crate) fn install(b: &mut EnvBuilder) {
    let h = b.hierarchy();
    let (object, nilc, boolean, integer, string, symbol) = (
        h.object(),
        h.nil_class(),
        h.boolean(),
        h.integer(),
        h.string(),
        h.symbol(),
    );

    // ───────────────────────── Object ─────────────────────────
    // Fallback equality/inspection, available on every receiver. `==` is
    // additionally specialized per primitive class below with tighter
    // parameter types, which is what actually guides the search.
    b.method(
        object,
        Instance,
        "==",
        vec![Ty::Obj],
        Ty::Bool,
        eff::pure(),
        Never,
        nat(|_, st, r, a| {
            need(a, 1, "==")?;
            Ok(Value::Bool(ruby_eq(st, r, &a[0])))
        }),
    );
    b.method(
        object,
        Instance,
        "!=",
        vec![Ty::Obj],
        Ty::Bool,
        eff::pure(),
        Never,
        nat(|_, st, r, a| {
            need(a, 1, "!=")?;
            Ok(Value::Bool(!ruby_eq(st, r, &a[0])))
        }),
    );
    b.method(
        object,
        Instance,
        "nil?",
        vec![],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "nil?")?;
            Ok(Value::Bool(r.is_nil()))
        }),
    );
    b.method(
        object,
        Instance,
        "present?",
        vec![],
        Ty::Bool,
        eff::pure(),
        Never,
        nat(|_, _, r, a| {
            need(a, 0, "present?")?;
            Ok(Value::Bool(present(r)))
        }),
    );
    b.method(
        object,
        Instance,
        "blank?",
        vec![],
        Ty::Bool,
        eff::pure(),
        Never,
        nat(|_, _, r, a| {
            need(a, 0, "blank?")?;
            Ok(Value::Bool(!present(r)))
        }),
    );

    // ───────────────────────── NilClass ─────────────────────────
    b.method(
        nilc,
        Instance,
        "nil?",
        vec![],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, _, a| {
            need(a, 0, "nil?")?;
            Ok(Value::Bool(true))
        }),
    );
    b.method(
        nilc,
        Instance,
        "to_s",
        vec![],
        Ty::Str,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, _, a| {
            need(a, 0, "to_s")?;
            Ok(Value::str(""))
        }),
    );
    b.method(
        nilc,
        Instance,
        "==",
        vec![Ty::Obj],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, _, a| {
            need(a, 1, "==")?;
            Ok(Value::Bool(a[0].is_nil()))
        }),
    );

    // ───────────────────────── Boolean ─────────────────────────
    b.method(
        boolean,
        Instance,
        "!",
        vec![],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "!")?;
            Ok(Value::Bool(!r.truthy()))
        }),
    );
    b.method(
        boolean,
        Instance,
        "==",
        vec![Ty::Bool],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, st, r, a| {
            need(a, 1, "==")?;
            Ok(Value::Bool(ruby_eq(st, r, &a[0])))
        }),
    );
    b.method(
        boolean,
        Instance,
        "&",
        vec![Ty::Bool],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 1, "&")?;
            Ok(Value::Bool(r.truthy() && a[0].truthy()))
        }),
    );
    b.method(
        boolean,
        Instance,
        "|",
        vec![Ty::Bool],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 1, "|")?;
            Ok(Value::Bool(r.truthy() || a[0].truthy()))
        }),
    );

    // ───────────────────────── Integer ─────────────────────────
    macro_rules! int_binop {
        ($name:expr, $f:expr) => {
            b.method(
                integer,
                Instance,
                $name,
                vec![Ty::Int],
                Ty::Int,
                eff::pure(),
                OwnerOnly,
                nat(move |_, _, r, a| {
                    need(a, 1, $name)?;
                    let (x, y) = (as_int(r, $name)?, as_int(&a[0], $name)?);
                    let f: fn(i64, i64) -> Result<i64, RuntimeError> = $f;
                    Ok(Value::Int(f(x, y)?))
                }),
            );
        };
    }
    int_binop!("+", |x, y| Ok(x.wrapping_add(y)));
    int_binop!("-", |x, y| Ok(x.wrapping_sub(y)));
    int_binop!("*", |x, y| Ok(x.wrapping_mul(y)));
    int_binop!("/", |x, y| if y == 0 {
        Err(RuntimeError::Other("divided by 0".into()))
    } else {
        Ok(x.wrapping_div(y))
    });
    int_binop!("%", |x, y| if y == 0 {
        Err(RuntimeError::Other("divided by 0".into()))
    } else {
        Ok(x.rem_euclid(y))
    });
    macro_rules! int_cmp {
        ($name:expr, $f:expr) => {
            b.method(
                integer,
                Instance,
                $name,
                vec![Ty::Int],
                Ty::Bool,
                eff::pure(),
                OwnerOnly,
                nat(move |_, _, r, a| {
                    need(a, 1, $name)?;
                    let f: fn(i64, i64) -> bool = $f;
                    Ok(Value::Bool(f(as_int(r, $name)?, as_int(&a[0], $name)?)))
                }),
            );
        };
    }
    int_cmp!("==", |x, y| x == y);
    int_cmp!("!=", |x, y| x != y);
    int_cmp!("<", |x, y| x < y);
    int_cmp!(">", |x, y| x > y);
    int_cmp!("<=", |x, y| x <= y);
    int_cmp!(">=", |x, y| x >= y);
    macro_rules! int_pred {
        ($name:expr, $f:expr) => {
            b.method(
                integer,
                Instance,
                $name,
                vec![],
                Ty::Bool,
                eff::pure(),
                OwnerOnly,
                nat(move |_, _, r, a| {
                    need(a, 0, $name)?;
                    let f: fn(i64) -> bool = $f;
                    Ok(Value::Bool(f(as_int(r, $name)?)))
                }),
            );
        };
    }
    int_pred!("zero?", |x| x == 0);
    int_pred!("positive?", |x| x > 0);
    int_pred!("negative?", |x| x < 0);
    int_pred!("even?", |x| x % 2 == 0);
    int_pred!("odd?", |x| x % 2 != 0);
    macro_rules! int_unop {
        ($name:expr, $f:expr) => {
            b.method(
                integer,
                Instance,
                $name,
                vec![],
                Ty::Int,
                eff::pure(),
                OwnerOnly,
                nat(move |_, _, r, a| {
                    need(a, 0, $name)?;
                    let f: fn(i64) -> i64 = $f;
                    Ok(Value::Int(f(as_int(r, $name)?)))
                }),
            );
        };
    }
    int_unop!("succ", |x| x.wrapping_add(1));
    int_unop!("pred", |x| x.wrapping_sub(1));
    int_unop!("abs", |x| x.wrapping_abs());
    b.method(
        integer,
        Instance,
        "to_s",
        vec![],
        Ty::Str,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "to_s")?;
            Ok(Value::str(&as_int(r, "to_s")?.to_string()))
        }),
    );

    // ───────────────────────── String ─────────────────────────
    macro_rules! str_pred {
        ($name:expr, $f:expr) => {
            b.method(
                string,
                Instance,
                $name,
                vec![],
                Ty::Bool,
                eff::pure(),
                OwnerOnly,
                nat(move |_, _, r, a| {
                    need(a, 0, $name)?;
                    let f: fn(&str) -> bool = $f;
                    Ok(Value::Bool(f(&as_str(r, $name)?)))
                }),
            );
        };
    }
    macro_rules! str_unop {
        ($name:expr, $f:expr) => {
            b.method(
                string,
                Instance,
                $name,
                vec![],
                Ty::Str,
                eff::pure(),
                OwnerOnly,
                nat(move |_, _, r, a| {
                    need(a, 0, $name)?;
                    let f: fn(&str) -> String = $f;
                    Ok(Value::str(&f(&as_str(r, $name)?)))
                }),
            );
        };
    }
    macro_rules! str_binpred {
        ($name:expr, $f:expr) => {
            b.method(
                string,
                Instance,
                $name,
                vec![Ty::Str],
                Ty::Bool,
                eff::pure(),
                OwnerOnly,
                nat(move |_, _, r, a| {
                    need(a, 1, $name)?;
                    let f: fn(&str, &str) -> bool = $f;
                    Ok(Value::Bool(f(&as_str(r, $name)?, &as_str(&a[0], $name)?)))
                }),
            );
        };
    }
    b.method(
        string,
        Instance,
        "==",
        vec![Ty::Str],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 1, "==")?;
            Ok(Value::Bool(
                matches!(&a[0], Value::Str(s) if **s == *as_str(r, "==")?),
            ))
        }),
    );
    b.method(
        string,
        Instance,
        "!=",
        vec![Ty::Str],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 1, "!=")?;
            Ok(Value::Bool(
                !matches!(&a[0], Value::Str(s) if **s == *as_str(r, "!=")?),
            ))
        }),
    );
    str_pred!("empty?", |s| s.is_empty());
    b.method(
        string,
        Instance,
        "length",
        vec![],
        Ty::Int,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "length")?;
            Ok(Value::Int(as_str(r, "length")?.chars().count() as i64))
        }),
    );
    b.method(
        string,
        Instance,
        "size",
        vec![],
        Ty::Int,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "size")?;
            Ok(Value::Int(as_str(r, "size")?.chars().count() as i64))
        }),
    );
    str_unop!("upcase", |s| s.to_uppercase());
    str_unop!("downcase", |s| s.to_lowercase());
    str_unop!("capitalize", |s| {
        let mut cs = s.chars();
        match cs.next() {
            Some(c) => c.to_uppercase().collect::<String>() + &cs.as_str().to_lowercase(),
            None => String::new(),
        }
    });
    str_unop!("reverse", |s| s.chars().rev().collect());
    str_unop!("strip", |s| s.trim().to_owned());
    str_unop!("chomp", |s| s.strip_suffix('\n').unwrap_or(s).to_owned());
    b.method(
        string,
        Instance,
        "+",
        vec![Ty::Str],
        Ty::Str,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 1, "+")?;
            Ok(Value::str(&format!(
                "{}{}",
                as_str(r, "+")?,
                as_str(&a[0], "+")?
            )))
        }),
    );
    str_binpred!("include?", |s, t| s.contains(t));
    str_binpred!("start_with?", |s, t| s.starts_with(t));
    str_binpred!("end_with?", |s, t| s.ends_with(t));
    b.method(
        string,
        Instance,
        "to_s",
        vec![],
        Ty::Str,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "to_s")?;
            Ok(r.clone())
        }),
    );
    b.method(
        string,
        Instance,
        "to_sym",
        vec![],
        Ty::Sym,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "to_sym")?;
            Ok(Value::Sym(Symbol::intern(&as_str(r, "to_sym")?)))
        }),
    );
    str_pred!("present?", |s| !s.trim().is_empty());
    str_pred!("blank?", |s| s.trim().is_empty());

    // ───────────────────────── Symbol ─────────────────────────
    b.method(
        symbol,
        Instance,
        "==",
        vec![Ty::Sym],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 1, "==")?;
            Ok(Value::Bool(r == &a[0]))
        }),
    );
    b.method(
        symbol,
        Instance,
        "to_s",
        vec![],
        Ty::Str,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "to_s")?;
            match r {
                Value::Sym(s) => Ok(Value::str(s.as_str())),
                _ => Err(RuntimeError::TypeMismatch {
                    name: Symbol::intern("to_s"),
                    expected: "Symbol",
                }),
            }
        }),
    );
    b.method(
        symbol,
        Instance,
        "to_sym",
        vec![],
        Ty::Sym,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "to_sym")?;
            Ok(r.clone())
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::eval::Locals;
    use rbsyn_interp::Evaluator;
    use rbsyn_lang::builder::*;
    use rbsyn_lang::Expr;

    fn eval(e: &Expr) -> Result<Value, RuntimeError> {
        let env = EnvBuilder::with_stdlib().finish();
        let mut state = WorldState::fresh(&env);
        let mut ev = Evaluator::new(&env, &mut state);
        ev.eval(&mut Locals::new(), e)
    }

    #[test]
    fn integer_arithmetic_and_comparisons() {
        assert_eq!(eval(&call(int(2), "+", [int(3)])).unwrap(), Value::Int(5));
        assert_eq!(eval(&call(int(2), "*", [int(3)])).unwrap(), Value::Int(6));
        assert_eq!(eval(&call(int(7), "%", [int(3)])).unwrap(), Value::Int(1));
        assert_eq!(
            eval(&call(int(2), "<", [int(3)])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&call(int(3), "==", [int(3)])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval(&call(int(0), "zero?", [])).unwrap(), Value::Bool(true));
        assert_eq!(eval(&call(int(3), "succ", [])).unwrap(), Value::Int(4));
        assert!(eval(&call(int(1), "/", [int(0)])).is_err());
    }

    #[test]
    fn string_transformations() {
        assert_eq!(
            eval(&call(str_("ab"), "upcase", [])).unwrap(),
            Value::str("AB")
        );
        assert_eq!(
            eval(&call(str_("Ab"), "downcase", [])).unwrap(),
            Value::str("ab")
        );
        assert_eq!(
            eval(&call(str_("ab"), "reverse", [])).unwrap(),
            Value::str("ba")
        );
        assert_eq!(
            eval(&call(str_("hELLO"), "capitalize", [])).unwrap(),
            Value::str("Hello")
        );
        assert_eq!(
            eval(&call(str_(" x "), "strip", [])).unwrap(),
            Value::str("x")
        );
        assert_eq!(
            eval(&call(str_("a"), "+", [str_("b")])).unwrap(),
            Value::str("ab")
        );
        assert_eq!(
            eval(&call(str_("abc"), "length", [])).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval(&call(str_("hello"), "include?", [str_("ell")])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&call(str_("hi"), "start_with?", [str_("h")])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&call(str_("s"), "to_sym", [])).unwrap(),
            Value::sym("s")
        );
    }

    #[test]
    fn string_equality_is_typed() {
        assert_eq!(
            eval(&call(str_("a"), "==", [str_("b")])).unwrap(),
            Value::Bool(false)
        );
        // Comparing a string to an integer is false, not an error (Ruby).
        assert_eq!(
            eval(&call(str_("1"), "==", [int(1)])).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn booleans_and_nil() {
        assert_eq!(eval(&call(true_(), "!", [])).unwrap(), Value::Bool(false));
        assert_eq!(
            eval(&call(false_(), "|", [true_()])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval(&call(nil(), "nil?", [])).unwrap(), Value::Bool(true));
        assert_eq!(eval(&call(int(1), "nil?", [])).unwrap(), Value::Bool(false));
        assert_eq!(eval(&call(nil(), "to_s", [])).unwrap(), Value::str(""));
        assert_eq!(
            eval(&call(nil(), "==", [nil()])).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn rails_presence_extensions() {
        assert_eq!(
            eval(&call(str_(""), "blank?", [])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&call(str_("x"), "present?", [])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval(&call(nil(), "blank?", [])).unwrap(), Value::Bool(true));
        assert_eq!(
            eval(&call(int(0), "present?", [])).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn symbols() {
        assert_eq!(
            eval(&call(sym("a"), "==", [sym("a")])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval(&call(sym("a"), "to_s", [])).unwrap(), Value::str("a"));
    }

    #[test]
    fn arity_errors() {
        assert!(matches!(
            eval(&call(int(1), "+", [])),
            Err(RuntimeError::ArgCount { .. })
        ));
    }
}
