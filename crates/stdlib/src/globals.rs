//! App-global singleton state with per-field region effects.
//!
//! Several app benchmarks have "side effects due to … reading and writing
//! globals" (§5.1) — Discourse's `SiteSetting`, Gitlab application
//! settings, Diaspora pod state. `define_global` creates a class whose
//! singleton getters/setters read/write interpreter globals under region
//! effects `Name.field`, so effect-guided synthesis can target them exactly
//! like database columns.

use crate::core_types::{nat, need};
use crate::{eff, EnvBuilder};
use rbsyn_lang::{ClassId, Symbol, Ty, Value};
use rbsyn_ty::EnumerateAt::OwnerOnly;
use rbsyn_ty::MethodKind::Singleton;

pub(crate) fn define_global(b: &mut EnvBuilder, name: &str, fields: &[(&str, Ty)]) -> ClassId {
    let class = b.hierarchy_mut().define(name, None);
    for (field, ty) in fields {
        let key = Symbol::intern(&format!("{name}.{field}"));
        b.method(
            class,
            Singleton,
            field,
            vec![],
            ty.clone(),
            eff::reads(eff::region(class, field)),
            OwnerOnly,
            nat(move |_, st, _, a| {
                need(a, 0, "global read")?;
                Ok(st.globals.get(&key).cloned().unwrap_or(Value::Nil))
            }),
        );
        let setter = format!("{field}=");
        b.method(
            class,
            Singleton,
            &setter,
            vec![ty.clone()],
            ty.clone(),
            eff::writes(eff::region(class, field)),
            OwnerOnly,
            nat(move |_, st, _, a| {
                need(a, 1, "global write")?;
                st.globals.insert(key, a[0].clone());
                Ok(a[0].clone())
            }),
        );
    }
    class
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::eval::Locals;
    use rbsyn_interp::{Evaluator, WorldState};
    use rbsyn_lang::builder::*;

    #[test]
    fn globals_read_and_write_with_region_effects() {
        let mut b = EnvBuilder::with_stdlib();
        let settings = b.define_global("SiteSetting", &[("notice", Ty::Str)]);
        let env = b.finish();
        let mut st = WorldState::fresh(&env);
        let mut ev = Evaluator::new(&env, &mut st);
        let mut locals = Locals::new();
        // Unset reads are nil.
        assert_eq!(
            ev.eval(&mut locals, &call(cls(settings), "notice", []))
                .unwrap(),
            Value::Nil
        );
        ev.eval(&mut locals, &call(cls(settings), "notice=", [str_("hi")]))
            .unwrap();
        assert_eq!(
            ev.eval(&mut locals, &call(cls(settings), "notice", []))
                .unwrap(),
            Value::str("hi")
        );
        // Annotation check: writer has the write region.
        let (r, _) = env
            .table
            .lookup(
                settings,
                rbsyn_ty::MethodKind::Singleton,
                Symbol::intern("notice="),
            )
            .unwrap();
        let effp = env.table.effect_of(r, settings);
        assert_eq!(
            effp.write,
            rbsyn_lang::EffectSet::single(rbsyn_lang::Effect::Region(
                settings,
                Symbol::intern("notice")
            ))
        );
    }

    #[test]
    fn globals_reset_between_worlds() {
        let mut b = EnvBuilder::with_stdlib();
        let settings = b.define_global("SiteSetting", &[("flag", Ty::Bool)]);
        let env = b.finish();
        {
            let mut st = WorldState::fresh(&env);
            let mut ev = Evaluator::new(&env, &mut st);
            ev.eval(&mut Locals::new(), &call(cls(settings), "flag=", [true_()]))
                .unwrap();
        }
        let mut st2 = WorldState::fresh(&env);
        let mut ev2 = Evaluator::new(&env, &mut st2);
        assert_eq!(
            ev2.eval(&mut Locals::new(), &call(cls(settings), "flag", []))
                .unwrap(),
            Value::Nil
        );
    }
}
