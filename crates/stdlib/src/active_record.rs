//! The simulated ActiveRecord query layer.
//!
//! All query methods are owned by `ActiveRecord::Base`, annotated with
//! `self` effect regions, and enumerated at every model subclass
//! ([`rbsyn_ty::EnumerateAt::ModelSubclasses`]) — so `Post.exists?` reads
//! `Post.*` while `User.exists?` reads `User.*`, exactly the `self` region
//! mechanism of §4. Their parameter and return types come from comp types
//! resolved against each model's schema (§4, "Type Level Computations").

use crate::core_types::{nat, need};
use crate::{eff, EnvBuilder};
use rbsyn_db::{RowId, TableId};
use rbsyn_interp::{InterpEnv, RuntimeError, WorldState};
use rbsyn_lang::{ClassId, Symbol, Ty, Value};
use rbsyn_ty::CompType::{ModelNullary, ModelQuery, ModelUpdate};
use rbsyn_ty::EnumerateAt::ModelSubclasses;
use rbsyn_ty::MethodKind::{Instance, Singleton};
use rbsyn_ty::QueryRet;

/// Resolves a singleton receiver (`Post`) to its class and backing table.
fn model_ctx(
    env: &InterpEnv,
    recv: &Value,
    name: &str,
) -> Result<(ClassId, TableId), RuntimeError> {
    let Value::Class(c) = recv else {
        return Err(RuntimeError::TypeMismatch {
            name: Symbol::intern(name),
            expected: "model class",
        });
    };
    let t = env
        .model_table(*c)
        .ok_or_else(|| RuntimeError::RecordError(format!("{name}: not a model class")))?;
    Ok((*c, t))
}

/// Resolves an instance receiver to its class, table and row.
fn record_ctx(
    env: &InterpEnv,
    state: &WorldState,
    recv: &Value,
    name: &str,
) -> Result<(ClassId, TableId, RowId), RuntimeError> {
    let Value::Obj(r) = recv else {
        return Err(RuntimeError::TypeMismatch {
            name: Symbol::intern(name),
            expected: "model instance",
        });
    };
    let obj = state.obj(*r);
    let (t, row) = obj
        .row
        .ok_or_else(|| RuntimeError::RecordError(format!("{name}: receiver is not persisted")))?;
    let _ = env;
    Ok((obj.class, t, row))
}

/// Converts a conditions hash into `(column, value)` pairs, rejecting
/// unknown columns and non-symbol keys (as ActiveRecord raises
/// `StatementInvalid` for unknown columns).
fn conds(
    state: &WorldState,
    table: TableId,
    v: &Value,
    name: &str,
) -> Result<Vec<(Symbol, Value)>, RuntimeError> {
    let Value::Hash(entries) = v else {
        return Err(RuntimeError::TypeMismatch {
            name: Symbol::intern(name),
            expected: "Hash",
        });
    };
    let t = state.db.table(table);
    let mut out = Vec::with_capacity(entries.len());
    for (k, val) in entries {
        let Value::Sym(col) = k else {
            return Err(RuntimeError::TypeMismatch {
                name: Symbol::intern(name),
                expected: "symbol keys",
            });
        };
        if !t.has_column(*col) {
            return Err(RuntimeError::RecordError(format!("unknown column {col}")));
        }
        out.push((*col, val.clone()));
    }
    Ok(out)
}

/// Optional single hash argument (`exists?` works with and without
/// conditions).
fn opt_conds(
    state: &WorldState,
    table: TableId,
    args: &[Value],
    name: &str,
) -> Result<Vec<(Symbol, Value)>, RuntimeError> {
    match args {
        [] => Ok(Vec::new()),
        [h] => conds(state, table, h, name),
        _ => Err(RuntimeError::ArgCount {
            name: Symbol::intern(name),
            expected: 1,
            got: args.len(),
        }),
    }
}

pub(crate) fn install(b: &mut EnvBuilder) {
    let base = b.ar_base;

    // ─────────────── singleton queries (read self.*) ───────────────
    b.comp_method(
        base,
        Singleton,
        "where",
        ModelQuery(QueryRet::ArrayOfSelf),
        eff::reads(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 1, "where")?;
            let (c, t) = model_ctx(env, r, "where")?;
            let cs = conds(st, t, &a[0], "where")?;
            let ids = st.db.table(t).select(&cs);
            let models = ids.into_iter().map(|id| st.alloc_model(c, t, id)).collect();
            Ok(Value::Array(models))
        }),
    );
    b.comp_method(
        base,
        Singleton,
        "find_by",
        ModelQuery(QueryRet::SelfInstance),
        eff::reads(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 1, "find_by")?;
            let (c, t) = model_ctx(env, r, "find_by")?;
            let cs = conds(st, t, &a[0], "find_by")?;
            Ok(match st.db.table(t).first_where(&cs) {
                Some(id) => st.alloc_model(c, t, id),
                None => Value::Nil,
            })
        }),
    );
    b.comp_method(
        base,
        Singleton,
        "first",
        ModelNullary(QueryRet::SelfInstance),
        eff::reads(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 0, "first")?;
            let (c, t) = model_ctx(env, r, "first")?;
            Ok(match st.db.table(t).first_where(&[]) {
                Some(id) => st.alloc_model(c, t, id),
                None => Value::Nil,
            })
        }),
    );
    b.comp_method(
        base,
        Singleton,
        "last",
        ModelNullary(QueryRet::SelfInstance),
        eff::reads(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 0, "last")?;
            let (c, t) = model_ctx(env, r, "last")?;
            Ok(match st.db.table(t).ids().last() {
                Some(id) => st.alloc_model(c, t, *id),
                None => Value::Nil,
            })
        }),
    );
    b.comp_method(
        base,
        Singleton,
        "exists?",
        ModelQuery(QueryRet::Bool),
        eff::reads(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            let (_, t) = model_ctx(env, r, "exists?")?;
            let cs = opt_conds(st, t, a, "exists?")?;
            Ok(Value::Bool(st.db.table(t).count_where(&cs) > 0))
        }),
    );
    b.comp_method(
        base,
        Singleton,
        "count",
        ModelNullary(QueryRet::Int),
        eff::reads(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 0, "count")?;
            let (_, t) = model_ctx(env, r, "count")?;
            Ok(Value::Int(st.db.table(t).len() as i64))
        }),
    );
    b.comp_method(
        base,
        Singleton,
        "all",
        ModelNullary(QueryRet::ArrayOfSelf),
        eff::reads(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 0, "all")?;
            let (c, t) = model_ctx(env, r, "all")?;
            let models = st
                .db
                .table(t)
                .ids()
                .into_iter()
                .map(|id| st.alloc_model(c, t, id))
                .collect();
            Ok(Value::Array(models))
        }),
    );

    // ─────────────── singleton writers (read+write self.*) ───────────────
    for name in ["create", "create!"] {
        b.comp_method(
            base,
            Singleton,
            name,
            ModelQuery(QueryRet::SelfInstance),
            eff::reads_writes(eff::self_star(), eff::self_star()),
            ModelSubclasses,
            nat(|env, st, r, a| {
                need(a, 1, "create")?;
                let (c, t) = model_ctx(env, r, "create")?;
                let cs = conds(st, t, &a[0], "create")?;
                let id = st.db.table_mut(t).insert(cs);
                Ok(st.alloc_model(c, t, id))
            }),
        );
    }
    b.comp_method(
        base,
        Singleton,
        "find_or_create_by",
        ModelQuery(QueryRet::SelfInstance),
        eff::reads_writes(eff::self_star(), eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 1, "find_or_create_by")?;
            let (c, t) = model_ctx(env, r, "find_or_create_by")?;
            let cs = conds(st, t, &a[0], "find_or_create_by")?;
            let id = match st.db.table(t).first_where(&cs) {
                Some(id) => id,
                None => st.db.table_mut(t).insert(cs),
            };
            Ok(st.alloc_model(c, t, id))
        }),
    );
    b.method(
        base,
        Singleton,
        "delete_all",
        vec![],
        Ty::Int,
        eff::writes(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 0, "delete_all")?;
            let (_, t) = model_ctx(env, r, "delete_all")?;
            let n = st.db.table(t).len() as i64;
            for id in st.db.table(t).ids() {
                st.db.table_mut(t).delete(id);
            }
            Ok(Value::Int(n))
        }),
    );

    // ─────────────── instance methods ───────────────
    for name in ["update!", "update"] {
        b.comp_method(
            base,
            Instance,
            name,
            ModelUpdate,
            eff::writes(eff::self_star()),
            ModelSubclasses,
            nat(|_, st, r, a| {
                need(a, 1, "update!")?;
                let Value::Obj(obj) = r else {
                    return Err(RuntimeError::TypeMismatch {
                        name: Symbol::intern("update!"),
                        expected: "model instance",
                    });
                };
                let (t, row) = st.obj(*obj).row.ok_or_else(|| {
                    RuntimeError::RecordError("update! on unpersisted object".into())
                })?;
                let cs = conds(st, t, &a[0], "update!")?;
                for (col, v) in cs {
                    if !st.db.table_mut(t).set(row, col, v) {
                        return Err(RuntimeError::RecordError(format!("cannot update {col}")));
                    }
                }
                Ok(Value::Bool(true))
            }),
        );
    }
    for name in ["save", "save!"] {
        // Column writers are write-through in this substrate, so save is a
        // semantic no-op kept for fidelity with app code shapes.
        b.method(
            base,
            Instance,
            name,
            vec![],
            Ty::Bool,
            eff::writes(eff::self_star()),
            ModelSubclasses,
            nat(|env, st, r, a| {
                need(a, 0, "save")?;
                let _ = record_ctx(env, st, r, "save")?;
                Ok(Value::Bool(true))
            }),
        );
    }
    b.method(
        base,
        Instance,
        "destroy",
        vec![],
        Ty::Bool,
        eff::writes(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 0, "destroy")?;
            let (_, t, row) = record_ctx(env, st, r, "destroy")?;
            st.db.table_mut(t).delete(row);
            Ok(Value::Bool(true))
        }),
    );
    b.method(
        base,
        Instance,
        "reload",
        vec![],
        Ty::Obj,
        eff::reads(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 0, "reload")?;
            let _ = record_ctx(env, st, r, "reload")?;
            Ok(r.clone())
        }),
    );
    b.method(
        base,
        Instance,
        "persisted?",
        vec![],
        Ty::Bool,
        eff::reads(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 0, "persisted?")?;
            let (_, t, row) = record_ctx(env, st, r, "persisted?")?;
            Ok(Value::Bool(st.db.table(t).exists(row)))
        }),
    );
    b.method(
        base,
        Instance,
        "new_record?",
        vec![],
        Ty::Bool,
        eff::reads(eff::self_star()),
        ModelSubclasses,
        nat(|env, st, r, a| {
            need(a, 0, "new_record?")?;
            let (_, t, row) = record_ctx(env, st, r, "new_record?")?;
            Ok(Value::Bool(!st.db.table(t).exists(row)))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::eval::Locals;
    use rbsyn_interp::Evaluator;
    use rbsyn_lang::builder::*;
    use rbsyn_lang::Expr;

    fn blog() -> (InterpEnv, ClassId) {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model(
            "Post",
            &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
        );
        (b.finish(), post)
    }

    fn eval_in(env: &InterpEnv, state: &mut WorldState, e: &Expr) -> Result<Value, RuntimeError> {
        let mut ev = Evaluator::new(env, state);
        ev.eval(&mut Locals::new(), e)
    }

    #[test]
    fn create_where_first_roundtrip() {
        let (env, post) = blog();
        let mut st = WorldState::fresh(&env);
        let p = cls(post);
        eval_in(
            &env,
            &mut st,
            &call(
                p.clone(),
                "create",
                [hash([("author", str_("alice")), ("slug", str_("hello"))])],
            ),
        )
        .unwrap();
        eval_in(
            &env,
            &mut st,
            &call(
                p.clone(),
                "create",
                [hash([("author", str_("bob")), ("slug", str_("world"))])],
            ),
        )
        .unwrap();
        let found = eval_in(
            &env,
            &mut st,
            &call(
                call(p.clone(), "where", [hash([("author", str_("bob"))])]),
                "first",
                [],
            ),
        )
        .unwrap();
        let slug = eval_in(
            &env,
            &mut st,
            &call(p.clone(), "exists?", [hash([("slug", str_("world"))])]),
        )
        .unwrap();
        assert_eq!(slug, Value::Bool(true));
        // The found record fronts the right row: author is bob.
        let Value::Obj(_) = found else {
            panic!("expected model instance")
        };
        assert_eq!(
            eval_in(&env, &mut st, &call(p.clone(), "count", [])).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn find_by_returns_nil_when_absent() {
        let (env, post) = blog();
        let mut st = WorldState::fresh(&env);
        let out = eval_in(
            &env,
            &mut st,
            &call(cls(post), "find_by", [hash([("slug", str_("none"))])]),
        )
        .unwrap();
        assert_eq!(out, Value::Nil);
        assert_eq!(
            eval_in(&env, &mut st, &call(cls(post), "first", [])).unwrap(),
            Value::Nil
        );
    }

    #[test]
    fn unknown_columns_are_rejected() {
        let (env, post) = blog();
        let mut st = WorldState::fresh(&env);
        let out = eval_in(
            &env,
            &mut st,
            &call(cls(post), "where", [hash([("nope", str_("x"))])]),
        );
        assert!(matches!(out, Err(RuntimeError::RecordError(_))));
    }

    #[test]
    fn exists_with_and_without_conditions() {
        let (env, post) = blog();
        let mut st = WorldState::fresh(&env);
        assert_eq!(
            eval_in(&env, &mut st, &call(cls(post), "exists?", [])).unwrap(),
            Value::Bool(false)
        );
        eval_in(&env, &mut st, &call(cls(post), "create", [hash([])])).unwrap();
        assert_eq!(
            eval_in(&env, &mut st, &call(cls(post), "exists?", [])).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn update_writes_through() {
        let (env, post) = blog();
        let mut st = WorldState::fresh(&env);
        let p = cls(post);
        let e = let_(
            "t0",
            call(p.clone(), "create", [hash([("title", str_("old"))])]),
            seq([
                call(var("t0"), "update!", [hash([("title", str_("new"))])]),
                call(var("t0"), "title", []),
            ]),
        );
        assert_eq!(eval_in(&env, &mut st, &e).unwrap(), Value::str("new"));
    }

    #[test]
    fn destroy_and_persistence_queries() {
        let (env, post) = blog();
        let mut st = WorldState::fresh(&env);
        let p = cls(post);
        let e = let_(
            "t0",
            call(p.clone(), "create", [hash([])]),
            seq([
                call(var("t0"), "persisted?", []),
                call(var("t0"), "destroy", []),
                call(var("t0"), "new_record?", []),
            ]),
        );
        assert_eq!(eval_in(&env, &mut st, &e).unwrap(), Value::Bool(true));
        assert_eq!(
            eval_in(&env, &mut st, &call(p, "count", [])).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn find_or_create_by_is_idempotent() {
        let (env, post) = blog();
        let mut st = WorldState::fresh(&env);
        let p = cls(post);
        let mk = call(
            p.clone(),
            "find_or_create_by",
            [hash([("slug", str_("s"))])],
        );
        eval_in(&env, &mut st, &mk).unwrap();
        eval_in(&env, &mut st, &mk).unwrap();
        assert_eq!(
            eval_in(&env, &mut st, &call(p, "count", [])).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn delete_all_empties_the_table() {
        let (env, post) = blog();
        let mut st = WorldState::fresh(&env);
        let p = cls(post);
        eval_in(&env, &mut st, &call(p.clone(), "create", [hash([])])).unwrap();
        eval_in(&env, &mut st, &call(p.clone(), "create", [hash([])])).unwrap();
        assert_eq!(
            eval_in(&env, &mut st, &call(p.clone(), "delete_all", [])).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_in(&env, &mut st, &call(p, "count", [])).unwrap(),
            Value::Int(0)
        );
    }
}
