//! Shorthand constructors for effect annotations, mirroring the RDL
//! annotation syntax the paper extends (§4): `read: ['Post.title']`,
//! `write: ['self']`, etc.

use rbsyn_lang::{ClassId, Effect, EffectPair, EffectSet, Symbol};

/// `⟨•, •⟩` — a pure method.
pub fn pure() -> EffectPair {
    EffectPair::pure_()
}

/// Read-only effect pair.
pub fn reads(e: EffectSet) -> EffectPair {
    EffectPair::new(e, EffectSet::pure_())
}

/// Write-only effect pair.
pub fn writes(e: EffectSet) -> EffectPair {
    EffectPair::new(EffectSet::pure_(), e)
}

/// Read/write effect pair.
pub fn reads_writes(r: EffectSet, w: EffectSet) -> EffectPair {
    EffectPair::new(r, w)
}

/// The `self` region `self.*` (reads/writes the receiver's class state).
pub fn self_star() -> EffectSet {
    EffectSet::single(Effect::SelfStar)
}

/// A `self.r` region.
pub fn self_region(r: &str) -> EffectSet {
    EffectSet::single(Effect::SelfRegion(Symbol::intern(r)))
}

/// A concrete `A.r` region.
pub fn region(class: ClassId, r: &str) -> EffectSet {
    EffectSet::single(Effect::Region(class, Symbol::intern(r)))
}

/// A concrete `A.*` region.
pub fn class_star(class: ClassId) -> EffectSet {
    EffectSet::single(Effect::ClassStar(class))
}

/// The top effect `*`.
pub fn star() -> EffectSet {
    EffectSet::star()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_shape_pairs() {
        assert!(pure().is_pure());
        let p = reads(self_star());
        assert!(!p.read.is_pure());
        assert!(p.write.is_pure());
        let w = writes(star());
        assert!(w.read.is_pure());
        assert!(w.write.is_star());
        let rw = reads_writes(self_star(), self_star());
        assert!(!rw.read.is_pure() && !rw.write.is_pure());
    }
}
