//! The annotated "Ruby core + ActiveRecord" library RbSyn synthesizes
//! against.
//!
//! The paper's evaluation shares 164 annotated library methods across all
//! benchmarks (§5.1): ActiveRecord query methods, core Ruby methods on
//! strings/integers/hashes/arrays, and per-model column accessors whose
//! type *and effect* annotations are generated from the table schema (§5.1,
//! "Annotations for Benchmarks"). This crate reproduces that library:
//!
//! * every method has a **native implementation** (registered in the
//!   interpreter) and a **type-and-effect annotation** (registered in the
//!   class table) — kept separate so coarsening annotation precision (§5.4)
//!   can never change runtime behaviour;
//! * ActiveRecord query methods are owned by `ActiveRecord::Base`, carry
//!   `self` effect regions, and are *enumerated* at every model subclass,
//!   reproducing the paper's `self` region extension (§4);
//! * [`EnvBuilder::define_model`] creates a model class, its database
//!   table, and column accessors annotated with read/write region effects
//!   (`Post#title` gets read effect `Post.title`, `Post#title=` the write);
//! * [`EnvBuilder::define_global`] creates app-singleton state (site
//!   settings and the like) with per-field region effects, used by the
//!   Discourse/Gitlab/Diaspora reconstructions.
//!
//! # Example
//!
//! ```
//! use rbsyn_stdlib::EnvBuilder;
//! use rbsyn_lang::Ty;
//!
//! let mut b = EnvBuilder::with_stdlib();
//! let post = b.define_model("Post", &[("author", Ty::Str), ("title", Ty::Str)]);
//! let env = b.finish();
//! assert!(env.table.hierarchy.schema(post).is_some());
//! ```

pub mod active_record;
pub mod collections;
pub mod core_types;
pub mod eff;
pub mod globals;
pub mod models;

use rbsyn_db::{Database, TableId, TableSchema};
use rbsyn_interp::{InterpEnv, NativeImpl};
use rbsyn_lang::{ClassId, EffectPair, Symbol, Ty, Value};
use rbsyn_ty::{ClassHierarchy, ClassTable, EnumerateAt, MethodKind, MethodSig, RetSpec, Schema};

/// Builds an [`InterpEnv`] containing the annotated standard library, plus
/// whatever models, globals and app-specific methods a benchmark defines.
pub struct EnvBuilder {
    table: ClassTable,
    natives: Vec<(ClassId, MethodKind, String, NativeImpl)>,
    db: Database,
    models: Vec<(ClassId, TableId)>,
    /// `ClassId` of `ActiveRecord::Base`.
    pub ar_base: ClassId,
}

impl EnvBuilder {
    /// A builder pre-populated with the full standard library.
    pub fn with_stdlib() -> EnvBuilder {
        let mut hierarchy = ClassHierarchy::new();
        let ar_base = hierarchy.define("ActiveRecord::Base", None);
        let mut b = EnvBuilder {
            table: ClassTable::new(hierarchy),
            natives: Vec::new(),
            db: Database::new(),
            models: Vec::new(),
            ar_base,
        };
        core_types::install(&mut b);
        collections::install(&mut b);
        active_record::install(&mut b);
        b
    }

    /// The class hierarchy being built.
    pub fn hierarchy(&self) -> &ClassHierarchy {
        &self.table.hierarchy
    }

    /// Mutable hierarchy access (for defining plain classes).
    pub fn hierarchy_mut(&mut self) -> &mut ClassHierarchy {
        &mut self.table.hierarchy
    }

    /// Registers one annotated native method: the signature goes into the
    /// class table, the body into the interpreter environment.
    #[allow(clippy::too_many_arguments)]
    pub fn method(
        &mut self,
        owner: ClassId,
        kind: MethodKind,
        name: &str,
        params: Vec<Ty>,
        ret: Ty,
        effect: EffectPair,
        enumerate: EnumerateAt,
        body: NativeImpl,
    ) {
        self.table.define_method(
            owner,
            MethodSig {
                name: Symbol::intern(name),
                kind,
                ret: RetSpec::Static { params, ret },
                effect,
            },
            enumerate,
        );
        self.natives.push((owner, kind, name.to_owned(), body));
    }

    /// Registers a comp-typed annotated native method.
    #[allow(clippy::too_many_arguments)] // mirrors the full signature row of the annotation table
    pub fn comp_method(
        &mut self,
        owner: ClassId,
        kind: MethodKind,
        name: &str,
        comp: rbsyn_ty::CompType,
        effect: EffectPair,
        enumerate: EnumerateAt,
        body: NativeImpl,
    ) {
        self.table.define_method(
            owner,
            MethodSig {
                name: Symbol::intern(name),
                kind,
                ret: RetSpec::Comp(comp),
                effect,
            },
            enumerate,
        );
        self.natives.push((owner, kind, name.to_owned(), body));
    }

    /// Defines a model class: a subclass of `ActiveRecord::Base` with the
    /// given columns, a backing table, generated column accessors (reader
    /// `col` with read effect `Model.col`, writer `col=` with the write
    /// effect), and model equality by primary key.
    pub fn define_model(&mut self, name: &str, columns: &[(&str, Ty)]) -> ClassId {
        models::define_model_with(self, name, columns, true)
    }

    /// Like [`EnvBuilder::define_model`] but without generated column
    /// *writers*: the only way to change rows is `update!`. This reproduces
    /// the paper's A9 library adjustment (§5.2), where per-field
    /// ActiveRecord writers were removed because a `reload` inside an
    /// assertion made their precise write effects invisible to the search.
    pub fn define_model_without_writers(&mut self, name: &str, columns: &[(&str, Ty)]) -> ClassId {
        models::define_model_with(self, name, columns, false)
    }

    /// Defines an app-global singleton class: per-field singleton readers
    /// and writers with region effects, backed by interpreter globals.
    pub fn define_global(&mut self, name: &str, fields: &[(&str, Ty)]) -> ClassId {
        globals::define_global(self, name, fields)
    }

    /// Direct database access for seeding templates.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Creates a raw table (models do this automatically).
    pub fn create_table(&mut self, schema: TableSchema) -> TableId {
        self.db.create_table(schema)
    }

    /// Records a model↔table binding (models do this automatically).
    pub fn bind_model(&mut self, class: ClassId, table: TableId) {
        self.models.push((class, table));
    }

    /// Registers a schema in the hierarchy (models do this automatically).
    pub fn set_schema(&mut self, class: ClassId, schema: Schema) {
        self.table.hierarchy.set_schema(class, schema);
    }

    /// Adds a constant to `Σ`.
    pub fn add_const(&mut self, v: Value) {
        self.table.add_const(v);
    }

    /// Finalizes the environment.
    pub fn finish(self) -> InterpEnv {
        let mut env = InterpEnv::new(self.table, self.db);
        for (owner, kind, name, body) in self.natives {
            env.register_native(owner, kind, &name, body);
        }
        for (class, table) in self.models {
            env.register_model(class, table);
        }
        env
    }
}

/// Structural/primary-key equality used by every `==` implementation: model
/// instances compare by (table, row); other heap objects by reference;
/// immediates structurally.
pub fn ruby_eq(state: &rbsyn_interp::WorldState, a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Obj(x), Value::Obj(y)) => match (state.obj(*x).row, state.obj(*y).row) {
            (Some(rx), Some(ry)) => rx == ry,
            _ => x == y,
        },
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::{Evaluator, WorldState};
    use rbsyn_lang::builder::*;
    use rbsyn_lang::Expr;

    fn eval_str(env: &InterpEnv, e: &Expr) -> Value {
        let mut state = WorldState::fresh(env);
        let mut ev = Evaluator::new(env, &mut state);
        let mut locals = rbsyn_interp::eval::Locals::new();
        ev.eval(&mut locals, e).unwrap()
    }

    #[test]
    fn stdlib_builds_and_counts_methods() {
        let b = EnvBuilder::with_stdlib();
        // The core library should be substantial (paper: 164 shared
        // methods; ours is in the same range once models are added).
        assert!(b.table.len() >= 80, "got {}", b.table.len());
    }

    #[test]
    fn string_methods_work_end_to_end() {
        let env = EnvBuilder::with_stdlib().finish();
        assert_eq!(
            eval_str(&env, &call(str_("Hello"), "upcase", [])),
            Value::str("HELLO")
        );
        assert_eq!(
            eval_str(&env, &call(str_(""), "empty?", [])),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str(&env, &call(str_("a"), "==", [str_("a")])),
            Value::Bool(true)
        );
    }

    #[test]
    fn model_definition_creates_everything() {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model("Post", &[("author", Ty::Str), ("title", Ty::Str)]);
        let env = b.finish();
        // Schema registered (with implicit id).
        let schema = env.table.hierarchy.schema(post).unwrap();
        assert!(schema.has_column(Symbol::intern("id")));
        // Table bound.
        assert!(env.model_table(post).is_some());
        // Accessors annotated: reader effect is the column region.
        let (mref, _) = env
            .table
            .lookup(post, MethodKind::Instance, Symbol::intern("title"))
            .expect("generated reader");
        let eff = env.table.effect_of(mref, post);
        assert_eq!(
            eff.read,
            rbsyn_lang::EffectSet::single(rbsyn_lang::Effect::Region(
                post,
                Symbol::intern("title")
            ))
        );
    }

    #[test]
    fn ruby_eq_compares_models_by_row() {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model("Post", &[("title", Ty::Str)]);
        let env = b.finish();
        let mut state = WorldState::fresh(&env);
        let t = env.model_table(post).unwrap();
        let r1 = state.db.table_mut(t).insert(vec![]);
        let a = state.alloc_model(post, t, r1);
        let b2 = state.alloc_model(post, t, r1);
        let r2 = state.db.table_mut(t).insert(vec![]);
        let c = state.alloc_model(post, t, r2);
        assert!(ruby_eq(&state, &a, &b2), "same row, different heap objects");
        assert!(!ruby_eq(&state, &a, &c));
        assert!(ruby_eq(&state, &Value::Int(1), &Value::Int(1)));
    }
}
