//! `Hash` and `Array` methods, including the comp-typed `Hash#[]` and
//! `Array#first`/`last` that the search resolves against *seed* receiver
//! types (§4: comp types narrow as receivers concretize).

use crate::core_types::{nat, need};
use crate::{eff, ruby_eq, EnvBuilder};
use rbsyn_lang::{Symbol, Ty, Value};
use rbsyn_ty::CompType;
use rbsyn_ty::EnumerateAt::OwnerOnly;
use rbsyn_ty::MethodKind::Instance;

fn as_hash(v: &Value, name: &str) -> Result<Vec<(Value, Value)>, rbsyn_interp::RuntimeError> {
    match v {
        Value::Hash(h) => Ok(h.clone()),
        _ => Err(rbsyn_interp::RuntimeError::TypeMismatch {
            name: Symbol::intern(name),
            expected: "Hash",
        }),
    }
}

fn as_array(v: &Value, name: &str) -> Result<Vec<Value>, rbsyn_interp::RuntimeError> {
    match v {
        Value::Array(a) => Ok(a.clone()),
        _ => Err(rbsyn_interp::RuntimeError::TypeMismatch {
            name: Symbol::intern(name),
            expected: "Array",
        }),
    }
}

pub(crate) fn install(b: &mut EnvBuilder) {
    let h = b.hierarchy();
    let (hash, array) = (h.hash(), h.array());

    // ───────────────────────── Hash ─────────────────────────
    b.comp_method(
        hash,
        Instance,
        "[]",
        CompType::HashGet,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 1, "[]")?;
            Ok(r.hash_get(&a[0]).cloned().unwrap_or(Value::Nil))
        }),
    );
    b.comp_method(
        hash,
        Instance,
        "fetch",
        CompType::HashGet,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 1, "fetch")?;
            r.hash_get(&a[0]).cloned().ok_or_else(|| {
                rbsyn_interp::RuntimeError::Other(format!("key not found: {}", a[0]))
            })
        }),
    );
    b.method(
        hash,
        Instance,
        "key?",
        vec![Ty::Sym],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 1, "key?")?;
            Ok(Value::Bool(r.hash_get(&a[0]).is_some()))
        }),
    );
    b.method(
        hash,
        Instance,
        "has_key?",
        vec![Ty::Sym],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 1, "has_key?")?;
            Ok(Value::Bool(r.hash_get(&a[0]).is_some()))
        }),
    );
    b.method(
        hash,
        Instance,
        "empty?",
        vec![],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "empty?")?;
            Ok(Value::Bool(as_hash(r, "empty?")?.is_empty()))
        }),
    );
    b.method(
        hash,
        Instance,
        "size",
        vec![],
        Ty::Int,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "size")?;
            Ok(Value::Int(as_hash(r, "size")?.len() as i64))
        }),
    );
    b.method(
        hash,
        Instance,
        "length",
        vec![],
        Ty::Int,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "length")?;
            Ok(Value::Int(as_hash(r, "length")?.len() as i64))
        }),
    );
    b.method(
        hash,
        Instance,
        "keys",
        vec![],
        Ty::Array(Box::new(Ty::Sym)),
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "keys")?;
            Ok(Value::Array(
                as_hash(r, "keys")?.into_iter().map(|(k, _)| k).collect(),
            ))
        }),
    );
    b.method(
        hash,
        Instance,
        "merge",
        vec![Ty::Instance(hash)],
        Ty::Instance(hash),
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 1, "merge")?;
            let mut out = Value::Hash(as_hash(r, "merge")?);
            for (k, v) in as_hash(&a[0], "merge")? {
                out.hash_insert(k, v);
            }
            Ok(out)
        }),
    );

    // ───────────────────────── Array ─────────────────────────
    b.comp_method(
        array,
        Instance,
        "first",
        CompType::ArrayElem,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "first")?;
            Ok(as_array(r, "first")?.first().cloned().unwrap_or(Value::Nil))
        }),
    );
    b.comp_method(
        array,
        Instance,
        "last",
        CompType::ArrayElem,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "last")?;
            Ok(as_array(r, "last")?.last().cloned().unwrap_or(Value::Nil))
        }),
    );
    b.method(
        array,
        Instance,
        "size",
        vec![],
        Ty::Int,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "size")?;
            Ok(Value::Int(as_array(r, "size")?.len() as i64))
        }),
    );
    b.method(
        array,
        Instance,
        "length",
        vec![],
        Ty::Int,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "length")?;
            Ok(Value::Int(as_array(r, "length")?.len() as i64))
        }),
    );
    b.method(
        array,
        Instance,
        "count",
        vec![],
        Ty::Int,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "count")?;
            Ok(Value::Int(as_array(r, "count")?.len() as i64))
        }),
    );
    b.method(
        array,
        Instance,
        "empty?",
        vec![],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, _, r, a| {
            need(a, 0, "empty?")?;
            Ok(Value::Bool(as_array(r, "empty?")?.is_empty()))
        }),
    );
    b.method(
        array,
        Instance,
        "include?",
        vec![Ty::Obj],
        Ty::Bool,
        eff::pure(),
        OwnerOnly,
        nat(|_, st, r, a| {
            need(a, 1, "include?")?;
            Ok(Value::Bool(
                as_array(r, "include?")?
                    .iter()
                    .any(|v| ruby_eq(st, v, &a[0])),
            ))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::eval::Locals;
    use rbsyn_interp::{Evaluator, RuntimeError, WorldState};
    use rbsyn_lang::builder::*;
    use rbsyn_lang::Expr;

    fn eval(e: &Expr) -> Result<Value, RuntimeError> {
        let env = EnvBuilder::with_stdlib().finish();
        let mut state = WorldState::fresh(&env);
        let mut ev = Evaluator::new(&env, &mut state);
        ev.eval(&mut Locals::new(), e)
    }

    #[test]
    fn hash_access() {
        let h = hash([("a", int(1)), ("b", str_("x"))]);
        assert_eq!(
            eval(&call(h.clone(), "[]", [sym("a")])).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval(&call(h.clone(), "[]", [sym("z")])).unwrap(),
            Value::Nil
        );
        assert_eq!(
            eval(&call(h.clone(), "fetch", [sym("b")])).unwrap(),
            Value::str("x")
        );
        assert!(eval(&call(h.clone(), "fetch", [sym("z")])).is_err());
        assert_eq!(
            eval(&call(h.clone(), "key?", [sym("a")])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval(&call(h.clone(), "size", [])).unwrap(), Value::Int(2));
        assert_eq!(eval(&call(h, "empty?", [])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn hash_merge_overrides() {
        let merged = eval(&call(
            hash([("a", int(1)), ("b", int(2))]),
            "merge",
            [hash([("b", int(3))])],
        ))
        .unwrap();
        assert_eq!(merged.hash_get(&Value::sym("a")), Some(&Value::Int(1)));
        assert_eq!(merged.hash_get(&Value::sym("b")), Some(&Value::Int(3)));
    }

    #[test]
    fn hash_keys_preserve_order() {
        let keys = eval(&call(hash([("z", int(1)), ("a", int(2))]), "keys", [])).unwrap();
        assert_eq!(keys, Value::Array(vec![Value::sym("z"), Value::sym("a")]));
    }

    #[test]
    fn array_queries() {
        // Arrays only arise from library calls; build one via Hash#keys.
        let arr = call(hash([("a", int(1)), ("b", int(2))]), "keys", []);
        assert_eq!(
            eval(&call(arr.clone(), "first", [])).unwrap(),
            Value::sym("a")
        );
        assert_eq!(
            eval(&call(arr.clone(), "last", [])).unwrap(),
            Value::sym("b")
        );
        assert_eq!(eval(&call(arr.clone(), "size", [])).unwrap(), Value::Int(2));
        assert_eq!(
            eval(&call(arr.clone(), "empty?", [])).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&call(arr, "include?", [sym("b")])).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn empty_array_first_is_nil() {
        let arr = call(hash([]), "keys", []);
        assert_eq!(eval(&call(arr, "first", [])).unwrap(), Value::Nil);
    }
}
