//! Model definition: class + schema + table + generated accessors.
//!
//! Mirrors the paper's extension of RDL's *type generating annotations* to
//! also generate effects (§5.1): for a column `title` of model `Post`, the
//! reader `Post#title` gets read effect `Post.title` and the writer
//! `Post#title=` the corresponding write effect. Writers are write-through
//! to the backing row (the substrate's equivalent of
//! `update_attribute`), which keeps candidate behaviour observable through
//! subsequent reads — the property effect-guided synthesis relies on.

use crate::core_types::{nat, need};
use crate::{eff, ruby_eq, EnvBuilder};
use rbsyn_db::TableSchema;
use rbsyn_interp::RuntimeError;
use rbsyn_lang::{ClassId, Symbol, Ty, Value};
use rbsyn_ty::EnumerateAt::OwnerOnly;
use rbsyn_ty::MethodKind::Instance;
use rbsyn_ty::Schema;

pub(crate) fn define_model_with(
    b: &mut EnvBuilder,
    name: &str,
    columns: &[(&str, Ty)],
    generate_writers: bool,
) -> ClassId {
    let base = b.ar_base;
    let class = b.hierarchy_mut().define(name, Some(base));
    let schema = Schema::new(
        columns
            .iter()
            .map(|(c, t)| (Symbol::intern(c), t.clone()))
            .collect(),
    );
    // Backing table: all schema columns except the implicit id.
    let table_name = format!("{}s", name.to_lowercase());
    let cols: Vec<&str> = schema
        .columns
        .iter()
        .filter(|(c, _)| c.as_str() != "id")
        .map(|(c, _)| c.as_str())
        .collect();
    let table = b.create_table(TableSchema::new(&table_name, cols));
    b.set_schema(class, schema.clone());
    b.bind_model(class, table);

    // Generated column accessors with per-column region effects.
    for (col, ty) in &schema.columns {
        let col = *col;
        let reader_col = col;
        b.method(
            class,
            Instance,
            col.as_str(),
            vec![],
            ty.clone(),
            eff::reads(eff::region(class, col.as_str())),
            OwnerOnly,
            nat(move |_, st, r, a| {
                need(a, 0, reader_col.as_str())?;
                let Value::Obj(o) = r else {
                    return Err(RuntimeError::TypeMismatch {
                        name: reader_col,
                        expected: "model instance",
                    });
                };
                let (t, row) = st.obj(*o).row.ok_or_else(|| {
                    RuntimeError::RecordError("attribute read on unpersisted object".into())
                })?;
                // Reads of deleted rows yield nil (stale-attribute reads in
                // Rails would return cached values; nil keeps specs honest).
                Ok(st
                    .db
                    .table(t)
                    .get_value(row, reader_col)
                    .unwrap_or(Value::Nil))
            }),
        );
        if col.as_str() == "id" || !generate_writers {
            continue; // primary keys (and writer-less models) have no writer
        }
        let writer_name = format!("{col}=");
        let writer_col = col;
        b.method(
            class,
            Instance,
            &writer_name,
            vec![ty.clone()],
            ty.clone(),
            eff::writes(eff::region(class, col.as_str())),
            OwnerOnly,
            nat(move |_, st, r, a| {
                need(a, 1, writer_col.as_str())?;
                let Value::Obj(o) = r else {
                    return Err(RuntimeError::TypeMismatch {
                        name: writer_col,
                        expected: "model instance",
                    });
                };
                let (t, row) = st.obj(*o).row.ok_or_else(|| {
                    RuntimeError::RecordError("attribute write on unpersisted object".into())
                })?;
                if !st.db.table_mut(t).set(row, writer_col, a[0].clone()) {
                    return Err(RuntimeError::RecordError(format!(
                        "cannot write {writer_col}"
                    )));
                }
                Ok(a[0].clone())
            }),
        );
    }

    // Model equality: same primary key (ActiveRecord semantics). Reads the
    // id region of both sides.
    b.method(
        class,
        Instance,
        "==",
        vec![Ty::Instance(class)],
        Ty::Bool,
        eff::reads(eff::region(class, "id")),
        OwnerOnly,
        nat(|_, st, r, a| {
            need(a, 1, "==")?;
            Ok(Value::Bool(ruby_eq(st, r, &a[0])))
        }),
    );
    b.method(
        class,
        Instance,
        "!=",
        vec![Ty::Instance(class)],
        Ty::Bool,
        eff::reads(eff::region(class, "id")),
        OwnerOnly,
        nat(|_, st, r, a| {
            need(a, 1, "!=")?;
            Ok(Value::Bool(!ruby_eq(st, r, &a[0])))
        }),
    );

    class
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::eval::Locals;
    use rbsyn_interp::{Evaluator, InterpEnv, WorldState};
    use rbsyn_lang::builder::*;
    use rbsyn_lang::Expr;
    use rbsyn_ty::MethodKind;

    fn blog() -> (InterpEnv, ClassId) {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model("Post", &[("author", Ty::Str), ("title", Ty::Str)]);
        (b.finish(), post)
    }

    fn eval_in(env: &InterpEnv, st: &mut WorldState, e: &Expr) -> Result<Value, RuntimeError> {
        Evaluator::new(env, st).eval(&mut Locals::new(), e)
    }

    #[test]
    fn accessors_read_and_write_through() {
        let (env, post) = blog();
        let mut st = WorldState::fresh(&env);
        let e = let_(
            "t0",
            call(cls(post), "create", [hash([("title", str_("Hello"))])]),
            seq([
                call(var("t0"), "title=", [str_("Changed")]),
                call(var("t0"), "title", []),
            ]),
        );
        assert_eq!(eval_in(&env, &mut st, &e).unwrap(), Value::str("Changed"));
        // And the write is visible through a *fresh* query (write-through).
        let q = call(
            call(cls(post), "where", [hash([("title", str_("Changed"))])]),
            "size",
            [],
        );
        assert_eq!(eval_in(&env, &mut st, &q).unwrap(), Value::Int(1));
    }

    #[test]
    fn id_reader_exists_but_no_writer() {
        let (env, post) = blog();
        assert!(env
            .table
            .lookup(post, MethodKind::Instance, Symbol::intern("id"))
            .is_some());
        assert!(env
            .table
            .lookup(post, MethodKind::Instance, Symbol::intern("id="))
            .is_none());
    }

    #[test]
    fn model_equality_by_primary_key() {
        let (env, post) = blog();
        let mut st = WorldState::fresh(&env);
        let e = let_(
            "a",
            call(cls(post), "create", [hash([("title", str_("x"))])]),
            let_(
                "b",
                call(
                    call(cls(post), "where", [hash([("title", str_("x"))])]),
                    "first",
                    [],
                ),
                call(var("a"), "==", [var("b")]),
            ),
        );
        assert_eq!(eval_in(&env, &mut st, &e).unwrap(), Value::Bool(true));
    }

    #[test]
    fn accessor_annotations_are_column_regions() {
        let (env, post) = blog();
        let (r, _) = env
            .table
            .lookup(post, MethodKind::Instance, Symbol::intern("title="))
            .unwrap();
        let effp = env.table.effect_of(r, post);
        assert!(effp.read.is_pure());
        assert_eq!(
            effp.write,
            rbsyn_lang::EffectSet::single(rbsyn_lang::Effect::Region(
                post,
                Symbol::intern("title")
            ))
        );
    }

    #[test]
    fn reads_of_deleted_rows_are_nil() {
        let (env, post) = blog();
        let mut st = WorldState::fresh(&env);
        let e = let_(
            "t0",
            call(cls(post), "create", [hash([("title", str_("x"))])]),
            seq([call(var("t0"), "destroy", []), call(var("t0"), "title", [])]),
        );
        assert_eq!(eval_in(&env, &mut st, &e).unwrap(), Value::Nil);
    }
}
