//! The class lattice of λ_syn (Fig. 3): single-inheritance classes rooted at
//! `Obj`, with `Nil` as the bottom *type* (handled in subtyping rather than
//! as a class).
//!
//! Model classes (the ActiveRecord substitutes) additionally carry a
//! [`Schema`] — their column names and types — which powers the comp types
//! of `where`/`exists?`/`create`/… and the generated column accessors.

use rbsyn_lang::{ClassId, Symbol, Ty};

/// Column layout of a model class: names and types, in declaration order.
/// The implicit `id: Int` primary key is part of the schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// `(column, type)` pairs in declaration order.
    pub columns: Vec<(Symbol, Ty)>,
}

impl Schema {
    /// Builds a schema; an `id: Int` column is prepended when absent.
    pub fn new(columns: Vec<(Symbol, Ty)>) -> Schema {
        let id = Symbol::intern("id");
        let mut columns = columns;
        if !columns.iter().any(|(c, _)| *c == id) {
            columns.insert(0, (id, Ty::Int));
        }
        Schema { columns }
    }

    /// Type of `column`, if present.
    pub fn column_ty(&self, column: Symbol) -> Option<&Ty> {
        self.columns
            .iter()
            .find(|(c, _)| *c == column)
            .map(|(_, t)| t)
    }

    /// Does the schema have this column?
    pub fn has_column(&self, column: Symbol) -> bool {
        self.column_ty(column).is_some()
    }
}

#[derive(Clone, Debug)]
struct ClassDef {
    name: Symbol,
    parent: Option<ClassId>,
    schema: Option<Schema>,
}

/// The single-inheritance class hierarchy.
///
/// A fresh hierarchy pre-registers the builtin classes (`Object`, `Boolean`,
/// `Integer`, `String`, `Symbol`, `Hash`, `Array`, `NilClass`); user and
/// model classes are added with [`ClassHierarchy::define`].
#[derive(Clone, Debug)]
pub struct ClassHierarchy {
    classes: Vec<ClassDef>,
}

macro_rules! builtin_accessors {
    ($(($fn_name:ident, $idx:expr, $name:expr)),* $(,)?) => {
        $(
            #[doc = concat!("`ClassId` of the builtin `", $name, "` class.")]
            pub fn $fn_name(&self) -> ClassId {
                // Interned once: `class_of_ty` sits inside `infer_ty`, so this
                // accessor runs tens of millions of times per suite run.
                static SYM: std::sync::OnceLock<Symbol> = std::sync::OnceLock::new();
                ClassId::new($idx, *SYM.get_or_init(|| Symbol::intern($name)))
            }
        )*
    };
}

impl ClassHierarchy {
    const BUILTINS: [&'static str; 8] = [
        "Object", "Boolean", "Integer", "String", "Symbol", "Hash", "Array", "NilClass",
    ];

    /// Creates a hierarchy containing only the builtin classes.
    pub fn new() -> ClassHierarchy {
        let mut h = ClassHierarchy {
            classes: Vec::new(),
        };
        let object = ClassId::new(0, Symbol::intern("Object"));
        for (i, name) in Self::BUILTINS.iter().enumerate() {
            h.classes.push(ClassDef {
                name: Symbol::intern(name),
                parent: if i == 0 { None } else { Some(object) },
                schema: None,
            });
        }
        h
    }

    builtin_accessors![
        (object, 0, "Object"),
        (boolean, 1, "Boolean"),
        (integer, 2, "Integer"),
        (string, 3, "String"),
        (symbol, 4, "Symbol"),
        (hash, 5, "Hash"),
        (array, 6, "Array"),
        (nil_class, 7, "NilClass"),
    ];

    /// Defines a new class under `parent` (defaults to `Object` when `None`).
    pub fn define(&mut self, name: &str, parent: Option<ClassId>) -> ClassId {
        let id = ClassId::new(self.classes.len() as u32, Symbol::intern(name));
        self.classes.push(ClassDef {
            name: Symbol::intern(name),
            parent: Some(parent.unwrap_or_else(|| self.object())),
            schema: None,
        });
        id
    }

    /// Attaches a model schema to a class.
    pub fn set_schema(&mut self, class: ClassId, schema: Schema) {
        self.classes[class.index()].schema = Some(schema);
    }

    /// Schema of a class, if it is a model. Inherited schemas are *not*
    /// looked up: each model declares its own table.
    pub fn schema(&self, class: ClassId) -> Option<&Schema> {
        self.classes[class.index()].schema.as_ref()
    }

    /// Name of a class.
    pub fn name(&self, class: ClassId) -> Symbol {
        self.classes[class.index()].name
    }

    /// Parent of a class (`None` only for `Object`).
    pub fn parent(&self, class: ClassId) -> Option<ClassId> {
        self.classes[class.index()].parent
    }

    /// Finds a class by name.
    pub fn find(&self, name: &str) -> Option<ClassId> {
        let sym = Symbol::intern(name);
        self.classes
            .iter()
            .position(|c| c.name == sym)
            .map(|i| ClassId::new(i as u32, sym))
    }

    /// `A ≤ B` on the class lattice: reflexive-transitive closure of the
    /// subclass relation, with `Object` on top.
    pub fn is_subclass(&self, a: ClassId, b: ClassId) -> bool {
        if b == self.object() {
            return true;
        }
        let mut cur = Some(a);
        while let Some(c) = cur {
            if c == b {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// The chain `[A, parent(A), …, Object]`.
    pub fn ancestry(&self, a: ClassId) -> Vec<ClassId> {
        let mut out = vec![a];
        let mut cur = self.parent(a);
        while let Some(c) = cur {
            out.push(c);
            cur = self.parent(c);
        }
        out
    }

    /// Number of classes defined so far.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Always false: builtins are pre-registered.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All class ids, in definition order.
    pub fn iter(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| ClassId::new(i as u32, c.name))
    }

    /// The instance type of a class, normalizing builtins to their primitive
    /// `Ty` forms (so `instance_ty(integer()) == Ty::Int`).
    pub fn instance_ty(&self, class: ClassId) -> Ty {
        match class.idx {
            1 => Ty::Bool,
            2 => Ty::Int,
            3 => Ty::Str,
            4 => Ty::Sym,
            7 => Ty::Nil,
            0 => Ty::Obj,
            _ => Ty::Instance(class),
        }
    }

    /// The class whose instances inhabit `ty`, when that is a single class.
    /// Unions, `Err` and `Nil`-as-bottom have no single class.
    pub fn class_of_ty(&self, ty: &Ty) -> Option<ClassId> {
        match ty {
            Ty::Bool => Some(self.boolean()),
            Ty::Int => Some(self.integer()),
            Ty::Str => Some(self.string()),
            Ty::Sym | Ty::SymLit(_) => Some(self.symbol()),
            Ty::FiniteHash(_) => Some(self.hash()),
            Ty::Array(_) => Some(self.array()),
            Ty::Nil => Some(self.nil_class()),
            Ty::Obj => Some(self.object()),
            Ty::Instance(c) => Some(*c),
            Ty::SingletonClass(_) | Ty::Union(_) | Ty::Err => None,
        }
    }

    /// Renders a type with real class names.
    pub fn render_ty(&self, ty: &Ty) -> String {
        ty.render(&|c| self.name(c).as_str().to_owned())
    }
}

impl Default for ClassHierarchy {
    fn default() -> Self {
        ClassHierarchy::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_preregistered() {
        let h = ClassHierarchy::new();
        assert_eq!(h.name(h.object()).as_str(), "Object");
        assert_eq!(h.name(h.integer()).as_str(), "Integer");
        assert_eq!(h.find("Hash"), Some(h.hash()));
        assert_eq!(h.find("Nope"), None);
        assert_eq!(h.len(), 8);
    }

    #[test]
    fn subclassing_walks_chain() {
        let mut h = ClassHierarchy::new();
        let base = h.define("ActiveRecord::Base", None);
        let post = h.define("Post", Some(base));
        assert!(h.is_subclass(post, base));
        assert!(h.is_subclass(post, h.object()));
        assert!(!h.is_subclass(base, post));
        assert!(h.is_subclass(post, post));
        assert_eq!(h.ancestry(post), vec![post, base, h.object()]);
    }

    #[test]
    fn schemas_prepend_id() {
        let s = Schema::new(vec![(Symbol::intern("title"), Ty::Str)]);
        assert!(s.has_column(Symbol::intern("id")));
        assert_eq!(s.column_ty(Symbol::intern("id")), Some(&Ty::Int));
        assert_eq!(s.column_ty(Symbol::intern("title")), Some(&Ty::Str));
        assert_eq!(s.columns.len(), 2);
    }

    #[test]
    fn instance_ty_normalizes_builtins() {
        let mut h = ClassHierarchy::new();
        assert_eq!(h.instance_ty(h.integer()), Ty::Int);
        assert_eq!(h.instance_ty(h.nil_class()), Ty::Nil);
        let post = h.define("Post", None);
        assert_eq!(h.instance_ty(post), Ty::Instance(post));
    }

    #[test]
    fn class_of_ty_roundtrips() {
        let mut h = ClassHierarchy::new();
        let post = h.define("Post", None);
        assert_eq!(h.class_of_ty(&Ty::Int), Some(h.integer()));
        assert_eq!(h.class_of_ty(&Ty::Instance(post)), Some(post));
        assert_eq!(h.class_of_ty(&Ty::Union(vec![Ty::Int, Ty::Str])), None);
        assert_eq!(
            h.class_of_ty(&Ty::SymLit(Symbol::intern("x"))),
            Some(h.symbol())
        );
    }

    #[test]
    fn render_uses_names() {
        let mut h = ClassHierarchy::new();
        let post = h.define("Post", None);
        assert_eq!(h.render_ty(&Ty::Instance(post)), "Post");
        assert_eq!(h.render_ty(&Ty::SingletonClass(post)), "Class<Post>");
    }
}
