//! Effect subsumption `ε₁ ⊆ ε₂` (Fig. 3) and the annotation-precision
//! levels of the §5.4 ablation.
//!
//! Subsumption rules (Fig. 3):
//!
//! * `• ⊆ ε` and `ε ⊆ *`;
//! * `A₁.* ⊆ A₂.*`, `A₁.r ⊆ A₂.r`, `A₁.r ⊆ A₂.*` whenever `A₁ ≤ A₂`;
//! * `ε₁ ⊆ ε₁ ∪ ε₂` and `ε₂ ⊆ ε₁ ∪ ε₂` (set semantics below).
//!
//! `self` atoms must be resolved (via [`EffectSet::resolve_self`]) before
//! subsumption is consulted; the class table does this at lookup time.

use crate::classes::ClassHierarchy;
use rbsyn_lang::{Effect, EffectSet};

/// Is atom `a` subsumed by atom `b`?
fn atom_subsumed(h: &ClassHierarchy, a: Effect, b: Effect) -> bool {
    match (a, b) {
        (_, Effect::Star) => true,
        (Effect::Star, _) => false,
        (Effect::ClassStar(c1), Effect::ClassStar(c2)) => h.is_subclass(c1, c2),
        (Effect::Region(c1, _), Effect::ClassStar(c2)) => h.is_subclass(c1, c2),
        (Effect::Region(c1, r1), Effect::Region(c2, r2)) => r1 == r2 && h.is_subclass(c1, c2),
        (Effect::ClassStar(_), Effect::Region(..)) => false,
        // Unresolved `self` atoms only compare equal to themselves; the
        // synthesizer resolves them before calling this.
        (Effect::SelfStar, Effect::SelfStar) => true,
        (Effect::SelfRegion(r1), Effect::SelfRegion(r2)) => r1 == r2,
        (Effect::SelfRegion(_), Effect::SelfStar) => true,
        _ => false,
    }
}

/// Is `ε₁ ⊆ ε₂`? Each atom of `ε₁` must be subsumed by some atom of `ε₂`;
/// the empty set `•` is therefore below everything and `*` above.
pub fn effect_subsumed(h: &ClassHierarchy, e1: &EffectSet, e2: &EffectSet) -> bool {
    e1.atoms()
        .iter()
        .all(|a| e2.atoms().iter().any(|b| atom_subsumed(h, *a, *b)))
}

/// The three effect-annotation precision levels compared in §5.4 / Fig. 8.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EffectPrecision {
    /// Region-level annotations (`Post.title`) — the paper's default.
    #[default]
    Precise,
    /// Class-level only (`Post.title` coarsens to `Post.*`).
    Class,
    /// Purity only (any impure effect coarsens to `*`).
    Purity,
}

impl EffectPrecision {
    /// Coarsens an effect set to this precision level.
    pub fn apply(self, e: &EffectSet) -> EffectSet {
        match self {
            EffectPrecision::Precise => e.clone(),
            EffectPrecision::Class => e.coarsen_to_class(),
            EffectPrecision::Purity => e.coarsen_to_purity(),
        }
    }

    /// All levels, in decreasing precision (the Fig. 8 x-axis groups).
    pub fn all() -> [EffectPrecision; 3] {
        [
            EffectPrecision::Precise,
            EffectPrecision::Class,
            EffectPrecision::Purity,
        ]
    }

    /// Human-readable label used by the experiment harness.
    pub fn label(self) -> &'static str {
        match self {
            EffectPrecision::Precise => "Precise Effects",
            EffectPrecision::Class => "Class Effects",
            EffectPrecision::Purity => "Purity Effects",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_lang::{ClassId, Symbol};

    fn setup() -> (ClassHierarchy, ClassId, ClassId) {
        let mut h = ClassHierarchy::new();
        let base = h.define("ActiveRecord::Base", None);
        let post = h.define("Post", Some(base));
        (h, base, post)
    }

    fn region(c: ClassId, r: &str) -> EffectSet {
        EffectSet::single(Effect::Region(c, Symbol::intern(r)))
    }

    #[test]
    fn pure_below_everything_star_above() {
        let (h, _, post) = setup();
        let eps = region(post, "title");
        assert!(effect_subsumed(&h, &EffectSet::pure_(), &eps));
        assert!(effect_subsumed(&h, &eps, &EffectSet::star()));
        assert!(!effect_subsumed(&h, &EffectSet::star(), &eps));
        assert!(effect_subsumed(
            &h,
            &EffectSet::pure_(),
            &EffectSet::pure_()
        ));
    }

    #[test]
    fn region_and_class_interaction() {
        let (h, base, post) = setup();
        // Post.title ⊆ Post.*
        assert!(effect_subsumed(
            &h,
            &region(post, "title"),
            &EffectSet::single(Effect::ClassStar(post))
        ));
        // Post.* ⊄ Post.title
        assert!(!effect_subsumed(
            &h,
            &EffectSet::single(Effect::ClassStar(post)),
            &region(post, "title")
        ));
        // Post.title ⊆ Base.title and Post.title ⊆ Base.* (Post ≤ Base).
        assert!(effect_subsumed(
            &h,
            &region(post, "title"),
            &region(base, "title")
        ));
        assert!(effect_subsumed(
            &h,
            &region(post, "title"),
            &EffectSet::single(Effect::ClassStar(base))
        ));
        // Not the other way around.
        assert!(!effect_subsumed(
            &h,
            &region(base, "title"),
            &region(post, "title")
        ));
        // Distinct regions never subsume.
        assert!(!effect_subsumed(
            &h,
            &region(post, "title"),
            &region(post, "slug")
        ));
    }

    #[test]
    fn union_subsumption() {
        let (h, _, post) = setup();
        let title = region(post, "title");
        let both = title.union(&region(post, "slug"));
        assert!(effect_subsumed(&h, &title, &both));
        assert!(!effect_subsumed(&h, &both, &title));
        assert!(effect_subsumed(&h, &both, &both));
    }

    #[test]
    fn precision_levels() {
        let (_, _, post) = setup();
        let title = region(post, "title");
        assert_eq!(EffectPrecision::Precise.apply(&title), title);
        assert_eq!(
            EffectPrecision::Class.apply(&title),
            EffectSet::single(Effect::ClassStar(post))
        );
        assert!(EffectPrecision::Purity.apply(&title).is_star());
        assert!(EffectPrecision::Purity.apply(&EffectSet::pure_()).is_pure());
    }

    #[test]
    fn subsumption_is_reflexive_and_transitive_on_samples() {
        let (h, base, post) = setup();
        let samples = [
            EffectSet::pure_(),
            EffectSet::star(),
            region(post, "title"),
            region(base, "title"),
            EffectSet::single(Effect::ClassStar(post)),
            EffectSet::single(Effect::ClassStar(base)),
            region(post, "title").union(&region(post, "slug")),
        ];
        for a in &samples {
            assert!(effect_subsumed(&h, a, a), "reflexive {a}");
            for b in &samples {
                for c in &samples {
                    if effect_subsumed(&h, a, b) && effect_subsumed(&h, b, c) {
                        assert!(effect_subsumed(&h, a, c), "transitive {a} ⊆ {b} ⊆ {c}");
                    }
                }
            }
        }
    }
}
