//! Semantic layer over the λ_syn type and effect syntax: the class lattice,
//! subtyping (`τ₁ ≤ τ₂`), effect subsumption (`ε₁ ⊆ ε₂`), method signatures
//! `τ →⟨ε_r,ε_w⟩ τ` with RDL-style *comp types* (type-level computations,
//! §4), constants `Σ`, and the class table `CT` of Fig. 3.

pub mod classes;
pub mod effects;
pub mod sig;
pub mod subtype;
pub mod table;

pub use classes::{ClassHierarchy, Schema};
pub use effects::{effect_subsumed, EffectPrecision};
pub use sig::{CompType, MethodKind, MethodSig, QueryRet, ResolvedSig, RetSpec};
pub use subtype::is_subtype;
pub use table::{ClassTable, EnumerateAt, MethodCandidate, MethodEntry, MethodRef};
