//! Method signatures `σ = τ →⟨ε_r,ε_w⟩ τ` (Fig. 3) and RDL-style *comp
//! types* (type-level computations, §4).
//!
//! A comp type computes a method's parameter and return types from its
//! receiver — e.g. `Post.where` takes a finite hash of `Post`'s columns
//! (all optional) and returns `Array<Post>`, while `User.where` computes the
//! analogous types for `User`. The paper modified RDL's comp types to
//! over-approximate when receivers are still holes and to narrow as terms
//! concretize (§3.1, §4); here the same effect is achieved by resolving comp
//! types at *enumeration* time against either a concrete model class or a
//! seed receiver type supplied by the search.

use crate::classes::ClassHierarchy;
use rbsyn_lang::types::HashField;
use rbsyn_lang::{ClassId, EffectPair, FiniteHash, Symbol, Ty};

/// Instance vs singleton (class-level) method.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MethodKind {
    /// Called on instances: `post.title`.
    Instance,
    /// Called on the class object: `Post.where(...)`.
    Singleton,
}

/// What an ActiveRecord-style model query returns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryRet {
    /// One record of the receiver model (e.g. `find_by`, `create`, `first`).
    SelfInstance,
    /// A collection of records (e.g. `where`).
    ArrayOfSelf,
    /// A boolean (e.g. `exists?`).
    Bool,
    /// A count (e.g. `count`).
    Int,
}

/// A type-level computation attached to a method signature.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompType {
    /// Model singleton query: parameter is the receiver model's column hash
    /// (all keys optional), return per [`QueryRet`]. Resolved per concrete
    /// model class.
    ModelQuery(QueryRet),
    /// Like [`CompType::ModelQuery`] but with no parameters (e.g. `first`,
    /// `count` without conditions).
    ModelNullary(QueryRet),
    /// Instance-level column update (`post.update!(title: …)`): the
    /// parameter is the receiver model's column hash, the return is `Bool`.
    ModelUpdate,
    /// `Hash#[]`: given a finite-hash receiver, the key parameter is the
    /// union of the receiver's key literals and the return is the union of
    /// the corresponding value types.
    HashGet,
    /// `Array#first` / `Array#last`: returns the receiver's element type.
    ArrayElem,
}

/// A fully resolved signature: concrete parameter and return types plus the
/// receiver type the resolution assumed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResolvedSig {
    /// Receiver type assumed during resolution.
    pub recv: Ty,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
}

impl CompType {
    /// Resolves a comp type against a receiver type. Returns `None` when the
    /// receiver shape does not fit (e.g. `HashGet` on a non-hash).
    pub fn resolve(self, h: &ClassHierarchy, recv: &Ty) -> Option<ResolvedSig> {
        match self {
            CompType::ModelQuery(qret) | CompType::ModelNullary(qret) => {
                let model = match recv {
                    Ty::SingletonClass(c) => *c,
                    _ => return None,
                };
                let schema = h.schema(model)?;
                let params = if matches!(self, CompType::ModelNullary(_)) {
                    Vec::new()
                } else {
                    vec![column_hash_ty(schema)]
                };
                let ret = match qret {
                    QueryRet::SelfInstance => Ty::Instance(model),
                    QueryRet::ArrayOfSelf => Ty::Array(Box::new(Ty::Instance(model))),
                    QueryRet::Bool => Ty::Bool,
                    QueryRet::Int => Ty::Int,
                };
                Some(ResolvedSig {
                    recv: recv.clone(),
                    params,
                    ret,
                })
            }
            CompType::ModelUpdate => {
                let model = match recv {
                    Ty::Instance(c) => *c,
                    _ => return None,
                };
                let schema = h.schema(model)?;
                Some(ResolvedSig {
                    recv: recv.clone(),
                    params: vec![column_hash_ty(schema)],
                    ret: Ty::Bool,
                })
            }
            CompType::HashGet => {
                let fh = match recv {
                    Ty::FiniteHash(fh) => fh,
                    _ => return None,
                };
                if fh.fields.is_empty() {
                    return None;
                }
                let key_ty = Ty::union(fh.fields.iter().map(|f| Ty::SymLit(f.key)).collect());
                let val_ty = Ty::union(fh.fields.iter().map(|f| f.ty.clone()).collect());
                Some(ResolvedSig {
                    recv: recv.clone(),
                    params: vec![key_ty],
                    ret: val_ty,
                })
            }
            CompType::ArrayElem => {
                let elem = match recv {
                    Ty::Array(t) => (**t).clone(),
                    _ => return None,
                };
                Some(ResolvedSig {
                    recv: recv.clone(),
                    params: Vec::new(),
                    ret: elem,
                })
            }
        }
    }
}

/// The optional-keyed finite hash type of a model's columns (the parameter
/// type comp types compute for `where`/`create`/`update!`/…).
fn column_hash_ty(schema: &crate::classes::Schema) -> Ty {
    Ty::FiniteHash(FiniteHash::new(
        schema
            .columns
            .iter()
            .map(|(k, t)| HashField {
                key: *k,
                ty: t.clone(),
                optional: true,
            })
            .collect(),
    ))
}

/// Return-type specification: a fixed type or a comp type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RetSpec {
    /// Statically known parameter/return types.
    Static {
        /// Parameter types.
        params: Vec<Ty>,
        /// Return type.
        ret: Ty,
    },
    /// Types computed from the receiver at resolution time.
    Comp(CompType),
}

/// A method signature with effect annotation.
///
/// The effect pair may mention `self` regions (§4); they are resolved
/// against the receiver class when the signature is looked up.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MethodSig {
    /// Method name.
    pub name: Symbol,
    /// Instance or singleton.
    pub kind: MethodKind,
    /// Parameter/return specification.
    pub ret: RetSpec,
    /// `⟨ε_r, ε_w⟩` annotation (unresolved `self` atoms allowed).
    pub effect: EffectPair,
}

impl MethodSig {
    /// Resolves parameter and return types against a receiver type.
    pub fn resolve(&self, h: &ClassHierarchy, recv: &Ty) -> Option<ResolvedSig> {
        match &self.ret {
            RetSpec::Static { params, ret } => Some(ResolvedSig {
                recv: recv.clone(),
                params: params.clone(),
                ret: ret.clone(),
            }),
            RetSpec::Comp(ct) => ct.resolve(h, recv),
        }
    }

    /// Resolves the effect annotation against the receiver class.
    pub fn effect_at(&self, class: ClassId) -> EffectPair {
        self.effect.resolve_self(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::Schema;
    use rbsyn_lang::EffectSet;

    fn model_setup() -> (ClassHierarchy, ClassId) {
        let mut h = ClassHierarchy::new();
        let base = h.define("ActiveRecord::Base", None);
        let post = h.define("Post", Some(base));
        h.set_schema(
            post,
            Schema::new(vec![
                (Symbol::intern("author"), Ty::Str),
                (Symbol::intern("title"), Ty::Str),
                (Symbol::intern("slug"), Ty::Str),
            ]),
        );
        (h, post)
    }

    #[test]
    fn model_query_resolves_schema_hash() {
        let (h, post) = model_setup();
        let r = CompType::ModelQuery(QueryRet::ArrayOfSelf)
            .resolve(&h, &Ty::SingletonClass(post))
            .unwrap();
        assert_eq!(r.ret, Ty::Array(Box::new(Ty::Instance(post))));
        match &r.params[0] {
            Ty::FiniteHash(fh) => {
                assert!(fh.field(Symbol::intern("slug")).unwrap().optional);
                assert_eq!(fh.fields.len(), 4, "id + 3 declared columns");
            }
            other => panic!("expected finite hash, got {other}"),
        }
    }

    #[test]
    fn model_query_requires_model_receiver() {
        let (h, _) = model_setup();
        assert!(CompType::ModelQuery(QueryRet::Bool)
            .resolve(&h, &Ty::Int)
            .is_none());
        // Non-model class (no schema) also fails.
        let plain = h.find("Object").unwrap();
        assert!(CompType::ModelQuery(QueryRet::Bool)
            .resolve(&h, &Ty::SingletonClass(plain))
            .is_none());
    }

    #[test]
    fn model_nullary_has_no_params() {
        let (h, post) = model_setup();
        let r = CompType::ModelNullary(QueryRet::SelfInstance)
            .resolve(&h, &Ty::SingletonClass(post))
            .unwrap();
        assert!(r.params.is_empty());
        assert_eq!(r.ret, Ty::Instance(post));
    }

    #[test]
    fn hash_get_unions_keys_and_values() {
        let h = ClassHierarchy::new();
        let fh = Ty::FiniteHash(FiniteHash::new(vec![
            HashField {
                key: Symbol::intern("author"),
                ty: Ty::Str,
                optional: true,
            },
            HashField {
                key: Symbol::intern("n"),
                ty: Ty::Int,
                optional: true,
            },
        ]));
        let r = CompType::HashGet.resolve(&h, &fh).unwrap();
        assert_eq!(
            r.params[0],
            Ty::union(vec![
                Ty::SymLit(Symbol::intern("author")),
                Ty::SymLit(Symbol::intern("n"))
            ])
        );
        assert_eq!(r.ret, Ty::union(vec![Ty::Str, Ty::Int]));
        assert!(CompType::HashGet.resolve(&h, &Ty::Int).is_none());
    }

    #[test]
    fn array_elem_projects() {
        let h = ClassHierarchy::new();
        let r = CompType::ArrayElem
            .resolve(&h, &Ty::Array(Box::new(Ty::Str)))
            .unwrap();
        assert_eq!(r.ret, Ty::Str);
        assert!(CompType::ArrayElem.resolve(&h, &Ty::Str).is_none());
    }

    #[test]
    fn self_effects_resolve_at_class() {
        let (h, post) = model_setup();
        let sig = MethodSig {
            name: Symbol::intern("exists?"),
            kind: MethodKind::Singleton,
            ret: RetSpec::Comp(CompType::ModelQuery(QueryRet::Bool)),
            effect: EffectPair::new(
                EffectSet::single(rbsyn_lang::Effect::SelfStar),
                EffectSet::pure_(),
            ),
        };
        let eff = sig.effect_at(post);
        assert_eq!(
            eff.read,
            EffectSet::single(rbsyn_lang::Effect::ClassStar(post))
        );
        let _ = h;
    }
}
