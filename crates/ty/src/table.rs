//! The class table `CT` (Fig. 3): every method the synthesizer may call,
//! with its type-and-effect annotation, plus the constant set `Σ`.
//!
//! Besides dispatch-style lookup (walking the superclass chain), the table
//! supports the two enumerations at the heart of the search:
//!
//! * [`ClassTable::candidates_returning`] — methods whose return type fits a
//!   typed hole (rule S-App, Fig. 4);
//! * [`ClassTable::candidates_writing`] — methods whose *write* effect
//!   subsumes a desired read effect (rule S-EffApp, Fig. 5).
//!
//! Both resolve `self` effect regions at the enumeration class (§4) and
//! apply the configured [`EffectPrecision`] so the §5.4 ablation is a single
//! switch.

use crate::classes::ClassHierarchy;
use crate::effects::{effect_subsumed, EffectPrecision};
use crate::sig::{MethodKind, MethodSig, RetSpec};
use crate::subtype::is_subtype;
use rbsyn_lang::{ClassId, EffectPair, EffectSet, Symbol, Ty, Value};

/// Where a method is offered to the *search* (dispatch is unaffected).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnumerateAt {
    /// Only at its owner class (the default).
    OwnerOnly,
    /// At every schema-bearing subclass of the owner — how inherited
    /// ActiveRecord query methods like `exists?` become `Post.exists?`,
    /// `User.exists?`, … with `self` effects resolved per model (§4).
    ModelSubclasses,
    /// Never offered to the search (helper methods callable from specs
    /// only).
    Never,
}

/// Index of a method entry in a [`ClassTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MethodRef(pub usize);

/// A method registered in the class table.
#[derive(Clone, Debug)]
pub struct MethodEntry {
    /// Defining class.
    pub owner: ClassId,
    /// Signature with effect annotation.
    pub sig: MethodSig,
    /// Search visibility.
    pub enumerate: EnumerateAt,
}

/// A method instantiated at a concrete receiver type, ready to fill a hole.
#[derive(Clone, Debug)]
pub struct MethodCandidate {
    /// The table entry this came from.
    pub entry: MethodRef,
    /// The enumeration class (receiver class for effect resolution).
    pub class: ClassId,
    /// Method name.
    pub name: Symbol,
    /// Instance or singleton.
    pub kind: MethodKind,
    /// Type for the receiver hole.
    pub recv_ty: Ty,
    /// Parameter types (holes to insert).
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    /// Resolved, precision-adjusted read effect.
    pub read: EffectSet,
    /// Resolved, precision-adjusted write effect.
    pub write: EffectSet,
}

/// The class table: hierarchy + annotated methods + constants `Σ`.
#[derive(Clone, Debug)]
pub struct ClassTable {
    /// The class lattice.
    pub hierarchy: ClassHierarchy,
    entries: Vec<MethodEntry>,
    // Exact-owner lookup index; dispatch walks the ancestry over it.
    index: std::collections::HashMap<(ClassId, MethodKind, Symbol), usize>,
    consts: Vec<(Value, Ty)>,
    precision: EffectPrecision,
}

impl ClassTable {
    /// An empty table over the given hierarchy.
    pub fn new(hierarchy: ClassHierarchy) -> ClassTable {
        ClassTable {
            hierarchy,
            entries: Vec::new(),
            index: std::collections::HashMap::new(),
            consts: Vec::new(),
            precision: EffectPrecision::Precise,
        }
    }

    /// Registers a method. Returns its handle. A redefinition at the same
    /// owner shadows the earlier entry for dispatch.
    pub fn define_method(
        &mut self,
        owner: ClassId,
        sig: MethodSig,
        enumerate: EnumerateAt,
    ) -> MethodRef {
        let r = MethodRef(self.entries.len());
        self.index.insert((owner, sig.kind, sig.name), r.0);
        self.entries.push(MethodEntry {
            owner,
            sig,
            enumerate,
        });
        r
    }

    /// The entry behind a handle.
    pub fn entry(&self, r: MethodRef) -> &MethodEntry {
        &self.entries[r.0]
    }

    /// All entries, in definition order.
    pub fn entries(&self) -> &[MethodEntry] {
        &self.entries
    }

    /// Number of registered methods (Table 1's "# Lib Meth" counts the
    /// search-visible subset; see [`ClassTable::search_visible_count`]).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of methods the search may use.
    pub fn search_visible_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !matches!(e.enumerate, EnumerateAt::Never))
            .count()
    }

    /// Sets the effect-annotation precision for all subsequent queries
    /// (§5.4 ablation).
    pub fn set_precision(&mut self, p: EffectPrecision) {
        self.precision = p;
    }

    /// Current effect-annotation precision.
    pub fn precision(&self) -> EffectPrecision {
        self.precision
    }

    /// Adds a constant to `Σ`, deriving its type.
    pub fn add_const(&mut self, v: Value) {
        let t = self.ty_of_value(&v);
        self.consts.push((v, t));
    }

    /// The constant set `Σ`.
    pub fn consts(&self) -> &[(Value, Ty)] {
        &self.consts
    }

    /// Clears `Σ` (benchmarks configure constants per problem).
    pub fn clear_consts(&mut self) {
        self.consts.clear();
    }

    /// Most specific type of a literal value (symbol constants get
    /// singleton `SymLit` types so they can fill key holes).
    pub fn ty_of_value(&self, v: &Value) -> Ty {
        match v {
            Value::Nil => Ty::Nil,
            Value::Bool(_) => Ty::Bool,
            Value::Int(_) => Ty::Int,
            Value::Str(_) => Ty::Str,
            Value::Sym(s) => Ty::SymLit(*s),
            Value::Class(c) => Ty::SingletonClass(*c),
            Value::Hash(_) => Ty::Instance(self.hierarchy.hash()),
            Value::Array(_) => Ty::Instance(self.hierarchy.array()),
            Value::Obj(_) => Ty::Obj,
        }
    }

    /// A content fingerprint of everything the *search* observes through
    /// this table: the class lattice (names, parents, schemas), every
    /// method entry (owner, signature, effects, search visibility), the
    /// constant set `Σ`, and the configured [`EffectPrecision`].
    ///
    /// Two tables with equal fingerprints answer every enumeration and
    /// typing query identically, so search caches key memoized expansion
    /// and type-check results on this value: identical environments share
    /// entries (across batch jobs, across repeated runs), while a problem
    /// that swaps constants or precision gets a fresh key — nothing leaks
    /// between configurations. 128 bits keep accidental collisions out of
    /// reach.
    ///
    /// The fingerprint hashes the deterministic `Vec`-backed parts only
    /// (never the `HashMap` dispatch index, whose iteration order is
    /// unstable), so it is stable across instances within a process.
    pub fn fingerprint(&self) -> u128 {
        let mut content = String::new();
        {
            use std::fmt::Write;
            let _ = write!(content, "{:?};{:?};", self.hierarchy, self.precision);
            for e in &self.entries {
                let _ = write!(content, "{e:?};");
            }
            for c in &self.consts {
                let _ = write!(content, "{c:?};");
            }
        }
        rbsyn_lang::hash128("rbsyn.table", &content)
    }

    /// Dispatch-style lookup: the nearest definition of `name` along the
    /// superclass chain of `class`. Returns the entry and the class at
    /// which dispatch happened (for `self` effect resolution).
    pub fn lookup(
        &self,
        class: ClassId,
        kind: MethodKind,
        name: Symbol,
    ) -> Option<(MethodRef, &MethodEntry)> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(&i) = self.index.get(&(c, kind, name)) {
                return Some((MethodRef(i), &self.entries[i]));
            }
            cur = self.hierarchy.parent(c);
        }
        None
    }

    /// The resolved, precision-adjusted effect of calling entry `r` with a
    /// receiver of class `at`.
    pub fn effect_of(&self, r: MethodRef, at: ClassId) -> EffectPair {
        let e = self.entries[r.0].sig.effect_at(at);
        EffectPair::new(
            self.precision.apply(&e.read),
            self.precision.apply(&e.write),
        )
    }

    fn enumeration_classes(&self, e: &MethodEntry) -> Vec<ClassId> {
        match e.enumerate {
            EnumerateAt::Never => Vec::new(),
            EnumerateAt::OwnerOnly => vec![e.owner],
            EnumerateAt::ModelSubclasses => self
                .hierarchy
                .iter()
                .filter(|c| {
                    self.hierarchy.schema(*c).is_some() && self.hierarchy.is_subclass(*c, e.owner)
                })
                .collect(),
        }
    }

    /// Instantiates every search-visible method at every enumeration class,
    /// resolving comp types (against the class for model queries, against
    /// each of `seeds` for receiver-dependent comp types like `Hash#[]`).
    pub fn enumerate_candidates(&self, seeds: &[Ty]) -> Vec<MethodCandidate> {
        let mut out = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            for class in self.enumeration_classes(e) {
                let recv_tys: Vec<Ty> = match (&e.sig.ret, e.sig.kind) {
                    (
                        RetSpec::Comp(
                            crate::sig::CompType::HashGet | crate::sig::CompType::ArrayElem,
                        ),
                        MethodKind::Instance,
                    ) => seeds.to_vec(),
                    (_, MethodKind::Singleton) => vec![Ty::SingletonClass(class)],
                    (_, MethodKind::Instance) => vec![self.hierarchy.instance_ty(class)],
                };
                for recv_ty in recv_tys {
                    let Some(resolved) = e.sig.resolve(&self.hierarchy, &recv_ty) else {
                        continue;
                    };
                    let eff = self.effect_of(MethodRef(i), class);
                    out.push(MethodCandidate {
                        entry: MethodRef(i),
                        class,
                        name: e.sig.name,
                        kind: e.sig.kind,
                        recv_ty: resolved.recv,
                        params: resolved.params,
                        ret: resolved.ret,
                        read: eff.read,
                        write: eff.write,
                    });
                }
            }
        }
        out
    }

    /// S-App enumeration: candidates whose return type is ≤ `goal`.
    pub fn candidates_returning(&self, goal: &Ty, seeds: &[Ty]) -> Vec<MethodCandidate> {
        self.enumerate_candidates(seeds)
            .into_iter()
            .filter(|c| is_subtype(&self.hierarchy, &c.ret, goal))
            .collect()
    }

    /// S-EffApp enumeration: candidates whose write effect subsumes `er`,
    /// ordered by annotation precision — region writers before class-level
    /// writers before `*` writers. This reproduces the implementation
    /// behaviour the paper observes in §5.4 ("RbSyn first tries all methods
    /// with precise annotations, only afterward trying methods with class
    /// annotations").
    pub fn candidates_writing(&self, er: &EffectSet, seeds: &[Ty]) -> Vec<MethodCandidate> {
        fn coarseness(e: &EffectSet) -> u8 {
            if e.is_star() {
                2
            } else if e
                .atoms()
                .iter()
                .any(|a| matches!(a, rbsyn_lang::Effect::ClassStar(_)))
            {
                1
            } else {
                0
            }
        }
        let mut out: Vec<MethodCandidate> = self
            .enumerate_candidates(seeds)
            .into_iter()
            .filter(|c| !c.write.is_pure() && effect_subsumed(&self.hierarchy, er, &c.write))
            .collect();
        out.sort_by_key(|c| coarseness(&c.write));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::Schema;
    use crate::sig::{CompType, QueryRet};
    use rbsyn_lang::Effect;

    fn sig_static(
        name: &str,
        kind: MethodKind,
        params: Vec<Ty>,
        ret: Ty,
        effect: EffectPair,
    ) -> MethodSig {
        MethodSig {
            name: Symbol::intern(name),
            kind,
            ret: RetSpec::Static { params, ret },
            effect,
        }
    }

    fn blog_table() -> (ClassTable, ClassId, ClassId) {
        let mut h = ClassHierarchy::new();
        let base = h.define("ActiveRecord::Base", None);
        let post = h.define("Post", Some(base));
        let user = h.define("User", Some(base));
        h.set_schema(post, Schema::new(vec![(Symbol::intern("title"), Ty::Str)]));
        h.set_schema(user, Schema::new(vec![(Symbol::intern("name"), Ty::Str)]));
        let mut ct = ClassTable::new(h);
        // Inherited query with self effects.
        ct.define_method(
            base,
            MethodSig {
                name: Symbol::intern("exists?"),
                kind: MethodKind::Singleton,
                ret: RetSpec::Comp(CompType::ModelQuery(QueryRet::Bool)),
                effect: EffectPair::new(EffectSet::single(Effect::SelfStar), EffectSet::pure_()),
            },
            EnumerateAt::ModelSubclasses,
        );
        // Accessor with a precise region write.
        ct.define_method(
            post,
            sig_static(
                "title=",
                MethodKind::Instance,
                vec![Ty::Str],
                Ty::Str,
                EffectPair::new(
                    EffectSet::pure_(),
                    EffectSet::single(Effect::Region(post, Symbol::intern("title"))),
                ),
            ),
            EnumerateAt::OwnerOnly,
        );
        (ct, post, user)
    }

    #[test]
    fn model_subclass_enumeration_resolves_self() {
        let (ct, post, user) = blog_table();
        let cands = ct.candidates_returning(&Ty::Bool, &[]);
        let classes: Vec<ClassId> = cands.iter().map(|c| c.class).collect();
        assert!(classes.contains(&post) && classes.contains(&user));
        let post_c = cands.iter().find(|c| c.class == post).unwrap();
        assert_eq!(post_c.read, EffectSet::single(Effect::ClassStar(post)));
        assert_eq!(post_c.recv_ty, Ty::SingletonClass(post));
    }

    #[test]
    fn writing_candidates_match_regions() {
        let (ct, post, _) = blog_table();
        let want = EffectSet::single(Effect::Region(post, Symbol::intern("title")));
        let cands = ct.candidates_writing(&want, &[]);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].name.as_str(), "title=");
        // A different region finds nothing.
        let other = EffectSet::single(Effect::Region(post, Symbol::intern("slug")));
        assert!(ct.candidates_writing(&other, &[]).is_empty());
    }

    #[test]
    fn precision_coarsening_changes_matching() {
        let (mut ct, post, user) = blog_table();
        ct.set_precision(EffectPrecision::Purity);
        // Under purity, the title= write becomes *, so any impure read is
        // matched by it — including a User region.
        let want = EffectSet::single(Effect::Region(user, Symbol::intern("name")));
        let want = EffectPrecision::Purity.apply(&want);
        let cands = ct.candidates_writing(&want, &[]);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].name.as_str(), "title=");
        let _ = post;
    }

    #[test]
    fn dispatch_walks_ancestry() {
        let (ct, post, _) = blog_table();
        let (r, e) = ct
            .lookup(post, MethodKind::Singleton, Symbol::intern("exists?"))
            .expect("inherited lookup");
        assert_eq!(e.sig.name.as_str(), "exists?");
        let eff = ct.effect_of(r, post);
        assert_eq!(eff.read, EffectSet::single(Effect::ClassStar(post)));
        assert!(ct
            .lookup(post, MethodKind::Singleton, Symbol::intern("nope"))
            .is_none());
    }

    #[test]
    fn consts_get_types() {
        let (mut ct, post, _) = blog_table();
        ct.add_const(Value::Nil);
        ct.add_const(Value::Class(post));
        ct.add_const(Value::sym("title"));
        let tys: Vec<&Ty> = ct.consts().iter().map(|(_, t)| t).collect();
        assert_eq!(tys[0], &Ty::Nil);
        assert_eq!(tys[1], &Ty::SingletonClass(post));
        assert_eq!(tys[2], &Ty::SymLit(Symbol::intern("title")));
        assert_eq!(ct.search_visible_count(), 2);
    }

    #[test]
    fn fingerprint_tracks_consts_and_precision() {
        let (ct, post, _) = blog_table();
        let (ct2, _, _) = blog_table();
        assert_eq!(
            ct.fingerprint(),
            ct2.fingerprint(),
            "independently built identical tables share a fingerprint"
        );
        let mut with_const = ct.clone();
        with_const.add_const(Value::Class(post));
        assert_ne!(ct.fingerprint(), with_const.fingerprint());
        with_const.clear_consts();
        assert_eq!(ct.fingerprint(), with_const.fingerprint());
        let mut coarse = ct.clone();
        coarse.set_precision(EffectPrecision::Purity);
        assert_ne!(
            ct.fingerprint(),
            coarse.fingerprint(),
            "precision must separate cache keys"
        );
    }

    #[test]
    fn hash_get_uses_seeds() {
        let (mut ct, _, _) = blog_table();
        let hash_class = ct.hierarchy.hash();
        ct.define_method(
            hash_class,
            MethodSig {
                name: Symbol::intern("[]"),
                kind: MethodKind::Instance,
                ret: RetSpec::Comp(CompType::HashGet),
                effect: EffectPair::pure_(),
            },
            EnumerateAt::OwnerOnly,
        );
        let seed = Ty::FiniteHash(rbsyn_lang::FiniteHash::new(vec![
            rbsyn_lang::types::HashField {
                key: Symbol::intern("title"),
                ty: Ty::Str,
                optional: true,
            },
        ]));
        let cands = ct.candidates_returning(&Ty::Str, std::slice::from_ref(&seed));
        let get = cands.iter().find(|c| c.name.as_str() == "[]").unwrap();
        assert_eq!(get.recv_ty, seed);
        assert_eq!(get.params[0], Ty::SymLit(Symbol::intern("title")));
        // Without seeds, Hash#[] is not offered.
        assert!(ct
            .candidates_returning(&Ty::Str, &[])
            .iter()
            .all(|c| c.name.as_str() != "[]"));
    }
}
