//! Subtyping `τ₁ ≤ τ₂` (Fig. 3).
//!
//! The lattice has `Nil` at the bottom — so `nil` is a valid filler for
//! *every* typed hole, which is exactly what makes benchmark A3 slow in the
//! paper (§5.2) — and `Obj` at the top. Classes use nominal single
//! inheritance; unions use the standard ∀/∃ rules; finite hashes use
//! width-and-optionality subtyping (a literal `{slug: Str}` is a subtype of
//! the parameter type `{id: ?Int, slug: ?Str, …}`).

use crate::classes::ClassHierarchy;
use rbsyn_lang::{FiniteHash, Ty};

/// Is `sub ≤ sup`?
pub fn is_subtype(h: &ClassHierarchy, sub: &Ty, sup: &Ty) -> bool {
    match (sub, sup) {
        // Nil is the bottom element: Nil ≤ τ (Fig. 3).
        (Ty::Nil, _) => true,
        // τ ≤ Obj (top).
        (_, Ty::Obj) => true,
        // Union left: every branch must fit.
        (Ty::Union(parts), _) => parts.iter().all(|p| is_subtype(h, p, sup)),
        // Union right: some branch must fit.
        (_, Ty::Union(parts)) => parts.iter().any(|p| is_subtype(h, sub, p)),
        (Ty::Bool, Ty::Bool) | (Ty::Int, Ty::Int) | (Ty::Str, Ty::Str) | (Ty::Sym, Ty::Sym) => true,
        (Ty::SymLit(_), Ty::Sym) => true,
        (Ty::SymLit(a), Ty::SymLit(b)) => a == b,
        (Ty::Instance(a), Ty::Instance(b)) => h.is_subclass(*a, *b),
        // Primitive types are instances of their builtin classes.
        (Ty::Bool, Ty::Instance(b)) => h.is_subclass(h.boolean(), *b),
        (Ty::Int, Ty::Instance(b)) => h.is_subclass(h.integer(), *b),
        (Ty::Str, Ty::Instance(b)) => h.is_subclass(h.string(), *b),
        (Ty::Sym | Ty::SymLit(_), Ty::Instance(b)) => h.is_subclass(h.symbol(), *b),
        (Ty::FiniteHash(_), Ty::Instance(b)) => h.is_subclass(h.hash(), *b),
        (Ty::Array(_), Ty::Instance(b)) => h.is_subclass(h.array(), *b),
        (Ty::SingletonClass(a), Ty::SingletonClass(b)) => h.is_subclass(*a, *b),
        (Ty::FiniteHash(f1), Ty::FiniteHash(f2)) => hash_subtype(h, f1, f2),
        (Ty::Array(a), Ty::Array(b)) => is_subtype(h, a, b),
        (Ty::Err, Ty::Err) => true,
        _ => false,
    }
}

/// Finite hash subtyping: every field of the subtype must exist in the
/// supertype at a subtype of its declared type (no unknown keys), and every
/// *required* field of the supertype must be present in the subtype.
fn hash_subtype(h: &ClassHierarchy, f1: &FiniteHash, f2: &FiniteHash) -> bool {
    for field in &f1.fields {
        match f2.field(field.key) {
            Some(sup_field) => {
                if !is_subtype(h, &field.ty, &sup_field.ty) {
                    return false;
                }
            }
            None => return false,
        }
    }
    for sup_field in &f2.fields {
        if !sup_field.optional && f1.field(sup_field.key).is_none() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_lang::types::HashField;
    use rbsyn_lang::Symbol;

    fn fh(fields: &[(&str, Ty, bool)]) -> Ty {
        Ty::FiniteHash(FiniteHash::new(
            fields
                .iter()
                .map(|(k, t, opt)| HashField {
                    key: Symbol::intern(k),
                    ty: t.clone(),
                    optional: *opt,
                })
                .collect(),
        ))
    }

    #[test]
    fn nil_is_bottom_obj_is_top() {
        let h = ClassHierarchy::new();
        for t in [
            Ty::Int,
            Ty::Str,
            Ty::Bool,
            Ty::Obj,
            Ty::Union(vec![Ty::Int, Ty::Str]),
        ] {
            assert!(is_subtype(&h, &Ty::Nil, &t), "Nil ≤ {t}");
            assert!(is_subtype(&h, &t, &Ty::Obj), "{t} ≤ Obj");
        }
        assert!(!is_subtype(&h, &Ty::Obj, &Ty::Int));
    }

    #[test]
    fn nominal_subtyping() {
        let mut h = ClassHierarchy::new();
        let base = h.define("ActiveRecord::Base", None);
        let post = h.define("Post", Some(base));
        let user = h.define("User", Some(base));
        assert!(is_subtype(&h, &Ty::Instance(post), &Ty::Instance(base)));
        assert!(!is_subtype(&h, &Ty::Instance(base), &Ty::Instance(post)));
        assert!(!is_subtype(&h, &Ty::Instance(post), &Ty::Instance(user)));
    }

    #[test]
    fn singleton_class_subtyping_follows_lattice() {
        let mut h = ClassHierarchy::new();
        let base = h.define("ActiveRecord::Base", None);
        let post = h.define("Post", Some(base));
        assert!(is_subtype(
            &h,
            &Ty::SingletonClass(post),
            &Ty::SingletonClass(base)
        ));
        assert!(!is_subtype(
            &h,
            &Ty::SingletonClass(base),
            &Ty::SingletonClass(post)
        ));
    }

    #[test]
    fn union_rules() {
        let h = ClassHierarchy::new();
        let u = Ty::Union(vec![Ty::Int, Ty::Str]);
        assert!(is_subtype(&h, &Ty::Int, &u));
        assert!(is_subtype(&h, &Ty::Str, &u));
        assert!(!is_subtype(&h, &Ty::Bool, &u));
        assert!(is_subtype(&h, &u, &Ty::Obj));
        assert!(!is_subtype(&h, &u, &Ty::Int));
        assert!(is_subtype(
            &h,
            &u,
            &Ty::Union(vec![Ty::Str, Ty::Int, Ty::Bool])
        ));
    }

    #[test]
    fn sym_literals() {
        let h = ClassHierarchy::new();
        let a = Ty::SymLit(Symbol::intern("title"));
        let b = Ty::SymLit(Symbol::intern("author"));
        assert!(is_subtype(&h, &a, &Ty::Sym));
        assert!(is_subtype(&h, &a, &a));
        assert!(!is_subtype(&h, &a, &b));
        assert!(!is_subtype(&h, &Ty::Sym, &a));
    }

    #[test]
    fn finite_hash_width_and_optionality() {
        let h = ClassHierarchy::new();
        let param = fh(&[
            ("id", Ty::Int, true),
            ("slug", Ty::Str, true),
            ("title", Ty::Str, true),
        ]);
        let lit = fh(&[("slug", Ty::Str, false)]);
        assert!(
            is_subtype(&h, &lit, &param),
            "{{slug: Str}} ≤ optional param hash"
        );
        let bad_key = fh(&[("nope", Ty::Str, false)]);
        assert!(
            !is_subtype(&h, &bad_key, &param),
            "unknown keys are rejected"
        );
        let bad_ty = fh(&[("slug", Ty::Int, false)]);
        assert!(!is_subtype(&h, &bad_ty, &param));
        // Required fields must be present.
        let req = fh(&[("slug", Ty::Str, false)]);
        let empty = fh(&[]);
        assert!(!is_subtype(&h, &empty, &req));
        assert!(is_subtype(&h, &lit, &req));
    }

    #[test]
    fn primitives_are_instances_of_builtins() {
        let h = ClassHierarchy::new();
        assert!(is_subtype(&h, &Ty::Int, &Ty::Instance(h.integer())));
        assert!(is_subtype(
            &h,
            &Ty::FiniteHash(FiniteHash::new(vec![])),
            &Ty::Instance(h.hash())
        ));
        assert!(!is_subtype(&h, &Ty::Int, &Ty::Instance(h.string())));
    }

    #[test]
    fn arrays_are_covariant() {
        let mut h = ClassHierarchy::new();
        let base = h.define("Base", None);
        let post = h.define("Post", Some(base));
        assert!(is_subtype(
            &h,
            &Ty::Array(Box::new(Ty::Instance(post))),
            &Ty::Array(Box::new(Ty::Instance(base)))
        ));
        assert!(!is_subtype(
            &h,
            &Ty::Array(Box::new(Ty::Instance(base))),
            &Ty::Array(Box::new(Ty::Instance(post)))
        ));
    }
}
