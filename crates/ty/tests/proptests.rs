//! Property tests for subtyping, effect subsumption and comp-type
//! resolution over randomized hierarchies.

use proptest::prelude::*;
use rbsyn_lang::{ClassId, Effect, EffectSet, Symbol, Ty};
use rbsyn_ty::{effect_subsumed, is_subtype, ClassHierarchy, CompType, QueryRet, Schema};

/// A randomized single-inheritance hierarchy of `n` classes, each parented
/// to an earlier one (or Object).
fn arb_hierarchy(n: usize) -> impl Strategy<Value = (ClassHierarchy, Vec<ClassId>)> {
    prop::collection::vec(0usize..=n, n).prop_map(move |parents| {
        let mut h = ClassHierarchy::new();
        let mut ids: Vec<ClassId> = Vec::new();
        for (i, p) in parents.iter().enumerate() {
            let parent = if *p == 0 || *p > ids.len() {
                None
            } else {
                Some(ids[*p - 1])
            };
            ids.push(h.define(&format!("K{i}"), parent));
        }
        (h, ids)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn subclassing_is_a_partial_order((h, ids) in arb_hierarchy(6)) {
        for &a in &ids {
            prop_assert!(h.is_subclass(a, a));
            prop_assert!(h.is_subclass(a, h.object()));
            for &b in &ids {
                for &c in &ids {
                    if h.is_subclass(a, b) && h.is_subclass(b, c) {
                        prop_assert!(h.is_subclass(a, c));
                    }
                }
                // Antisymmetry: mutual subclassing means equality.
                if a != b {
                    prop_assert!(!(h.is_subclass(a, b) && h.is_subclass(b, a)));
                }
            }
        }
    }

    #[test]
    fn instance_subtyping_follows_the_lattice((h, ids) in arb_hierarchy(6)) {
        for &a in &ids {
            for &b in &ids {
                prop_assert_eq!(
                    is_subtype(&h, &Ty::Instance(a), &Ty::Instance(b)),
                    h.is_subclass(a, b)
                );
            }
        }
    }

    #[test]
    fn region_effects_respect_the_lattice((h, ids) in arb_hierarchy(5), r in "[a-z]{1,4}") {
        let region = Symbol::intern(&r);
        for &a in &ids {
            for &b in &ids {
                let ea = EffectSet::single(Effect::Region(a, region));
                let eb = EffectSet::single(Effect::Region(b, region));
                let eb_star = EffectSet::single(Effect::ClassStar(b));
                prop_assert_eq!(effect_subsumed(&h, &ea, &eb), h.is_subclass(a, b));
                prop_assert_eq!(effect_subsumed(&h, &ea, &eb_star), h.is_subclass(a, b));
                // A.* never fits under a region.
                let ea_star = EffectSet::single(Effect::ClassStar(a));
                prop_assert!(!effect_subsumed(&h, &ea_star, &eb));
            }
        }
    }

    #[test]
    fn comp_types_resolve_only_on_models((h, ids) in arb_hierarchy(4)) {
        let mut h = h;
        // Give the first class a schema; the rest stay plain.
        h.set_schema(ids[0], Schema::new(vec![(Symbol::intern("c"), Ty::Str)]));
        for (i, &c) in ids.iter().enumerate() {
            let resolved = CompType::ModelQuery(QueryRet::Bool)
                .resolve(&h, &Ty::SingletonClass(c));
            prop_assert_eq!(resolved.is_some(), i == 0);
        }
    }

    #[test]
    fn union_subtyping_agrees_with_memberwise_checks(
        (h, ids) in arb_hierarchy(4),
        pick in prop::collection::vec(0usize..4, 1..3),
    ) {
        let parts: Vec<Ty> = pick.iter().map(|i| Ty::Instance(ids[*i])).collect();
        let u = Ty::union(parts.clone());
        for p in &parts {
            prop_assert!(is_subtype(&h, p, &u), "{p} ≤ {u}");
        }
        prop_assert!(is_subtype(&h, &u, &Ty::Obj));
    }
}
