//! Property tests for the relational substrate.

use proptest::prelude::*;
use rbsyn_db::{Database, TableSchema};
use rbsyn_lang::{Symbol, Value};

fn fresh_db() -> (Database, rbsyn_db::TableId) {
    let mut db = Database::new();
    let t = db.create_table(TableSchema::new("rows", ["a", "b"]));
    (db, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inserts_are_selectable_by_their_values(vals in prop::collection::vec(0i64..5, 1..12)) {
        let (mut db, t) = fresh_db();
        let a = Symbol::intern("a");
        for v in &vals {
            db.table_mut(t).insert(vec![(a, Value::Int(*v))]);
        }
        for v in 0..5 {
            let expected = vals.iter().filter(|x| **x == v).count();
            prop_assert_eq!(db.table(t).count_where(&[(a, Value::Int(v))]), expected);
        }
        prop_assert_eq!(db.table(t).len(), vals.len());
    }

    #[test]
    fn ids_are_unique_and_monotonic(n in 1usize..20) {
        let (mut db, t) = fresh_db();
        let mut last = 0;
        for _ in 0..n {
            let id = db.table_mut(t).insert(vec![]);
            prop_assert!(id.0 > last);
            last = id.0;
        }
    }

    #[test]
    fn set_then_get_roundtrips(v in 0i64..100) {
        let (mut db, t) = fresh_db();
        let a = Symbol::intern("a");
        let id = db.table_mut(t).insert(vec![]);
        prop_assert!(db.table_mut(t).set(id, a, Value::Int(v)));
        prop_assert_eq!(db.table(t).get_value(id, a), Some(Value::Int(v)));
    }

    #[test]
    fn snapshots_never_observe_later_writes(v in 0i64..100) {
        let (mut db, t) = fresh_db();
        let a = Symbol::intern("a");
        let id = db.table_mut(t).insert(vec![(a, Value::Int(v))]);
        let snap = db.clone();
        db.table_mut(t).set(id, a, Value::Int(v + 1));
        prop_assert_eq!(snap.table(t).get_value(id, a), Some(Value::Int(v)));
        prop_assert_eq!(db.table(t).get_value(id, a), Some(Value::Int(v + 1)));
    }

    #[test]
    fn delete_removes_exactly_one(n in 1usize..10, k in 0usize..10) {
        let (mut db, t) = fresh_db();
        let ids: Vec<_> = (0..n).map(|_| db.table_mut(t).insert(vec![])).collect();
        let victim = ids[k % n];
        prop_assert!(db.table_mut(t).delete(victim));
        prop_assert_eq!(db.table(t).len(), n - 1);
        prop_assert!(!db.table(t).exists(victim));
        for id in ids {
            if id != victim {
                prop_assert!(db.table(t).exists(id));
            }
        }
    }
}
