//! In-memory relational store backing the simulated ActiveRecord layer.
//!
//! The paper's benchmarks run against Rails apps whose state lives in a SQL
//! database; RbSyn resets that database before every candidate run (§4,
//! "hooks for resetting the global state"). This crate provides the
//! equivalent substrate: typed tables with auto-increment primary keys,
//! equality filtering (the only query shape ActiveRecord's hash conditions
//! need), and cheap whole-database snapshots for candidate isolation.
//!
//! # Example
//!
//! ```
//! use rbsyn_db::{Database, TableSchema};
//! use rbsyn_lang::{Symbol, Value};
//!
//! let mut db = Database::new();
//! let posts = db.create_table(TableSchema::new("posts", ["author", "title"]));
//! let id = db.table_mut(posts).insert(vec![
//!     (Symbol::intern("author"), Value::str("alice")),
//!     (Symbol::intern("title"), Value::str("Hello")),
//! ]);
//! assert_eq!(
//!     db.table(posts).get_value(id, Symbol::intern("title")),
//!     Some(Value::str("Hello"))
//! );
//! ```

#![deny(missing_docs)]

use rbsyn_lang::{ObsHasher, Symbol, Value};
use std::fmt;
use std::sync::Arc;

/// Identifies a table within a [`Database`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TableId(pub u32);

/// Primary key of a row.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RowId(pub i64);

/// Column layout of a table. The `id` column is implicit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (by Rails convention the pluralized model name, but any
    /// unique string works).
    pub name: Symbol,
    /// Column names, excluding `id`.
    pub columns: Vec<Symbol>,
}

impl TableSchema {
    /// Builds a schema from a table name and column names.
    pub fn new<'a>(name: &str, columns: impl IntoIterator<Item = &'a str>) -> TableSchema {
        TableSchema {
            name: Symbol::intern(name),
            columns: columns.into_iter().map(Symbol::intern).collect(),
        }
    }
}

/// A single row: primary key plus column values (parallel to the schema's
/// column order; missing values are `nil`, as in a SQL `NULL`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Primary key.
    pub id: RowId,
    values: Vec<Value>,
}

impl Row {
    /// Value of the `i`-th column.
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

/// A table: schema plus rows in insertion order.
#[derive(Clone, Debug)]
pub struct Table {
    /// Column layout.
    pub schema: TableSchema,
    rows: Vec<Row>,
    next_id: i64,
}

impl Table {
    fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            next_id: 1,
        }
    }

    fn col_index(&self, column: Symbol) -> Option<usize> {
        self.schema.columns.iter().position(|c| *c == column)
    }

    /// Does the table have this column (`id` counts)?
    pub fn has_column(&self, column: Symbol) -> bool {
        column.as_str() == "id" || self.col_index(column).is_some()
    }

    /// Inserts a row from `(column, value)` pairs; unmentioned columns are
    /// `nil`. Returns the fresh primary key.
    pub fn insert(&mut self, values: Vec<(Symbol, Value)>) -> RowId {
        let id = RowId(self.next_id);
        self.next_id += 1;
        let mut row = Row {
            id,
            values: vec![Value::Nil; self.schema.columns.len()],
        };
        for (c, v) in values {
            if let Some(i) = self.col_index(c) {
                row.values[i] = v;
            }
        }
        self.rows.push(row);
        id
    }

    /// Reads one cell, materializing `id` as an integer value. `None` when
    /// the row is gone or the column unknown.
    pub fn get_value(&self, id: RowId, column: Symbol) -> Option<Value> {
        let row = self.rows.iter().find(|r| r.id == id)?;
        if column.as_str() == "id" {
            return Some(Value::Int(row.id.0));
        }
        row.values.get(self.col_index(column)?).cloned()
    }

    /// Writes one cell. Returns `false` when the row or column is unknown.
    pub fn set(&mut self, id: RowId, column: Symbol, value: Value) -> bool {
        let Some(i) = self.col_index(column) else {
            return false;
        };
        match self.rows.iter_mut().find(|r| r.id == id) {
            Some(row) => {
                row.values[i] = value;
                true
            }
            None => false,
        }
    }

    /// Ids of rows matching all `(column, value)` equality conditions, in
    /// insertion order. `id` conditions are supported.
    pub fn select(&self, conds: &[(Symbol, Value)]) -> Vec<RowId> {
        self.rows
            .iter()
            .filter(|r| {
                conds.iter().all(|(c, v)| {
                    if c.as_str() == "id" {
                        Value::Int(r.id.0) == *v
                    } else {
                        match self.col_index(*c) {
                            Some(i) => r.values[i] == *v,
                            None => false,
                        }
                    }
                })
            })
            .map(|r| r.id)
            .collect()
    }

    /// First row id matching the conditions.
    pub fn first_where(&self, conds: &[(Symbol, Value)]) -> Option<RowId> {
        self.select(conds).into_iter().next()
    }

    /// Number of rows matching the conditions (all rows for `&[]`).
    pub fn count_where(&self, conds: &[(Symbol, Value)]) -> usize {
        self.select(conds).len()
    }

    /// Deletes a row. Returns `true` when it existed.
    pub fn delete(&mut self, id: RowId) -> bool {
        let before = self.rows.len();
        self.rows.retain(|r| r.id != id);
        self.rows.len() != before
    }

    /// Does a row with this id exist?
    pub fn exists(&self, id: RowId) -> bool {
        self.rows.iter().any(|r| r.id == id)
    }

    /// All row ids, in insertion order.
    pub fn ids(&self) -> Vec<RowId> {
        self.rows.iter().map(|r| r.id).collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Deterministic content digest of this table (schema, id counter and
    /// rows), folded into the given observation hasher. Used by the
    /// evaluation-vector fingerprints of `rbsyn-interp`: hashing goes by
    /// string content and row values, never by interner indices, so two
    /// runs that leave a table in the same state digest identically across
    /// threads and processes.
    pub fn obs_hash(&self, h: &mut ObsHasher) {
        h.put_symbol(self.schema.name);
        h.put_u64(self.schema.columns.len() as u64);
        for c in &self.schema.columns {
            h.put_symbol(*c);
        }
        h.put_i64(self.next_id);
        h.put_u64(self.rows.len() as u64);
        for r in &self.rows {
            h.put_i64(r.id.0);
            for v in &r.values {
                h.put_value(v);
            }
        }
    }
}

/// A collection of tables; cloning snapshots the entire store, which is how
/// candidate runs are isolated.
///
/// Snapshots are **copy-on-write**: tables live behind [`Arc`]s, so a clone
/// is one refcount bump per table and a table's rows are only deep-copied
/// on the first write through [`Database::table_mut`]. The search clones a
/// prepared spec's database snapshot once per candidate run — over a
/// million times per hard benchmark — and most candidates touch at most
/// one table, so the fork cost drops from O(total rows) to O(tables
/// written).
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: Vec<Arc<Table>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table and returns its id.
    pub fn create_table(&mut self, schema: TableSchema) -> TableId {
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Arc::new(Table::new(schema)));
        id
    }

    /// Finds a table by name.
    pub fn find_table(&self, name: &str) -> Option<TableId> {
        let sym = Symbol::intern(name);
        self.tables
            .iter()
            .position(|t| t.schema.name == sym)
            .map(|i| TableId(i as u32))
    }

    /// Shared access to a table.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this database.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Mutable access to a table. This is the copy-on-write point: a table
    /// still shared with a snapshot is deep-copied here, once.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this database.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        Arc::make_mut(&mut self.tables[id.0 as usize])
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Does this database still share the storage of table `id` with
    /// `base` (i.e. neither side has written it since the fork)? The
    /// evaluation-vector fingerprint uses this to digest untouched tables
    /// as a constant marker instead of re-hashing their contents.
    pub fn shares_table(&self, base: &Database, id: TableId) -> bool {
        match (
            self.tables.get(id.0 as usize),
            base.tables.get(id.0 as usize),
        ) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Deletes all rows everywhere, keeping schemas and id counters — the
    /// "clear the database" reset hook of §4.
    pub fn clear_rows(&mut self) {
        for t in &mut self.tables {
            if !t.rows.is_empty() {
                Arc::make_mut(t).rows.clear();
            }
        }
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tables {
            writeln!(f, "{} ({} rows)", t.schema.name, t.rows.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posts_db() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.create_table(TableSchema::new("posts", ["author", "title", "slug"]));
        (db, t)
    }

    fn sv(s: &str) -> Value {
        Value::str(s)
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let (mut db, t) = posts_db();
        let a = db
            .table_mut(t)
            .insert(vec![(Symbol::intern("author"), sv("a"))]);
        let b = db.table_mut(t).insert(vec![]);
        assert_eq!(a, RowId(1));
        assert_eq!(b, RowId(2));
        assert_eq!(db.table(t).len(), 2);
    }

    #[test]
    fn unmentioned_columns_default_to_nil() {
        let (mut db, t) = posts_db();
        let id = db
            .table_mut(t)
            .insert(vec![(Symbol::intern("title"), sv("x"))]);
        assert_eq!(
            db.table(t).get_value(id, Symbol::intern("author")),
            Some(Value::Nil)
        );
        assert_eq!(
            db.table(t).get_value(id, Symbol::intern("title")),
            Some(sv("x"))
        );
    }

    #[test]
    fn id_column_materializes() {
        let (mut db, t) = posts_db();
        let id = db.table_mut(t).insert(vec![]);
        assert_eq!(
            db.table(t).get_value(id, Symbol::intern("id")),
            Some(Value::Int(1))
        );
        assert_eq!(db.table(t).get_value(RowId(99), Symbol::intern("id")), None);
    }

    #[test]
    fn select_filters_by_equality() {
        let (mut db, t) = posts_db();
        let a = db.table_mut(t).insert(vec![
            (Symbol::intern("author"), sv("alice")),
            (Symbol::intern("slug"), sv("s1")),
        ]);
        let _b = db.table_mut(t).insert(vec![
            (Symbol::intern("author"), sv("bob")),
            (Symbol::intern("slug"), sv("s2")),
        ]);
        let c = db.table_mut(t).insert(vec![
            (Symbol::intern("author"), sv("alice")),
            (Symbol::intern("slug"), sv("s3")),
        ]);
        let alice = db
            .table(t)
            .select(&[(Symbol::intern("author"), sv("alice"))]);
        assert_eq!(alice, vec![a, c]);
        let both = db.table(t).select(&[
            (Symbol::intern("author"), sv("alice")),
            (Symbol::intern("slug"), sv("s3")),
        ]);
        assert_eq!(both, vec![c]);
        assert_eq!(db.table(t).first_where(&[]), Some(a));
        assert_eq!(db.table(t).count_where(&[]), 3);
        // Select by id works too.
        assert_eq!(
            db.table(t).select(&[(Symbol::intern("id"), Value::Int(3))]),
            vec![c]
        );
    }

    #[test]
    fn set_and_delete() {
        let (mut db, t) = posts_db();
        let id = db
            .table_mut(t)
            .insert(vec![(Symbol::intern("title"), sv("old"))]);
        assert!(db.table_mut(t).set(id, Symbol::intern("title"), sv("new")));
        assert_eq!(
            db.table(t).get_value(id, Symbol::intern("title")),
            Some(sv("new"))
        );
        assert!(!db.table_mut(t).set(id, Symbol::intern("nope"), sv("x")));
        assert!(db.table_mut(t).delete(id));
        assert!(!db.table(t).exists(id));
        assert!(!db.table_mut(t).delete(id));
    }

    #[test]
    fn snapshots_are_independent() {
        let (mut db, t) = posts_db();
        db.table_mut(t)
            .insert(vec![(Symbol::intern("title"), sv("x"))]);
        let snapshot = db.clone();
        db.table_mut(t)
            .insert(vec![(Symbol::intern("title"), sv("y"))]);
        assert_eq!(db.table(t).len(), 2);
        assert_eq!(snapshot.table(t).len(), 1);
    }

    #[test]
    fn clones_share_tables_until_written() {
        let (mut db, t) = posts_db();
        db.table_mut(t)
            .insert(vec![(Symbol::intern("title"), sv("x"))]);
        let fork = db.clone();
        assert!(fork.shares_table(&db, t), "a fresh fork shares storage");
        let mut fork2 = db.clone();
        fork2.table_mut(t).insert(vec![]);
        assert!(
            !fork2.shares_table(&db, t),
            "the first write breaks sharing"
        );
        assert_eq!(db.table(t).len(), 1, "the base is untouched");
        assert!(!db.shares_table(&Database::new(), t), "missing table");
    }

    #[test]
    fn obs_hash_tracks_content() {
        let digest = |db: &Database, t: TableId| {
            let mut h = rbsyn_lang::ObsHasher::new();
            db.table(t).obs_hash(&mut h);
            h.finish128()
        };
        let (mut a, ta) = posts_db();
        let (mut b, tb) = posts_db();
        a.table_mut(ta)
            .insert(vec![(Symbol::intern("title"), sv("x"))]);
        b.table_mut(tb)
            .insert(vec![(Symbol::intern("title"), sv("x"))]);
        assert_eq!(digest(&a, ta), digest(&b, tb), "equal content, equal fp");
        b.table_mut(tb)
            .set(RowId(1), Symbol::intern("title"), sv("y"));
        assert_ne!(digest(&a, ta), digest(&b, tb));
        // Deleting and re-inserting bumps next_id: observably different.
        let (mut c, tc) = posts_db();
        let id = c
            .table_mut(tc)
            .insert(vec![(Symbol::intern("title"), sv("x"))]);
        c.table_mut(tc).delete(id);
        c.table_mut(tc)
            .insert(vec![(Symbol::intern("title"), sv("x"))]);
        assert_ne!(digest(&a, ta), digest(&c, tc));
    }

    #[test]
    fn clear_rows_keeps_id_counter() {
        let (mut db, t) = posts_db();
        db.table_mut(t).insert(vec![]);
        db.clear_rows();
        assert!(db.table(t).is_empty());
        let id = db.table_mut(t).insert(vec![]);
        assert_eq!(
            id,
            RowId(2),
            "ids keep counting after reset, like a real sequence"
        );
    }

    #[test]
    fn find_table_by_name() {
        let (db, t) = posts_db();
        assert_eq!(db.find_table("posts"), Some(t));
        assert_eq!(db.find_table("users"), None);
    }

    #[test]
    fn has_column_includes_id() {
        let (db, t) = posts_db();
        assert!(db.table(t).has_column(Symbol::intern("id")));
        assert!(db.table(t).has_column(Symbol::intern("slug")));
        assert!(!db.table(t).has_column(Symbol::intern("nope")));
    }
}
