//! Cross-crate integration tests: run a representative subset of the
//! Table 1 benchmarks end-to-end and re-validate every synthesized program
//! against its specs with a fresh interpreter.
//!
//! The slowest benchmarks are exercised by the bench harness
//! (`cargo run -p rbsyn-bench --bin table1`) rather than here, keeping
//! `cargo test` wall-clock reasonable in debug builds.

use rbsyn::core::{Options, Synthesizer};
use rbsyn::interp::run_spec;
use rbsyn::suite::{all_benchmarks, benchmark};
use std::time::Duration;

/// Benchmarks fast enough for CI-style testing even unoptimized.
const FAST: &[&str] = &["S1", "S2", "S3", "S4", "S5", "S7", "A5", "A7", "A10", "A11"];

fn synthesize(id: &str) -> (rbsyn::interp::InterpEnv, rbsyn::lang::Program) {
    let b = benchmark(id).unwrap_or_else(|| panic!("benchmark {id} exists"));
    let (env, problem) = (b.build)();
    let opts = Options {
        timeout: Some(Duration::from_secs(120)),
        ..(b.options)()
    };
    let specs = problem.specs.clone();
    let result = Synthesizer::new(env, problem, opts)
        .run()
        .unwrap_or_else(|e| panic!("{id} must synthesize: {e}"));
    // Re-validate in a *fresh* environment: the solution must not depend on
    // any state left behind by the search.
    let (env2, _) = (b.build)();
    for s in &specs {
        assert!(
            run_spec(&env2, s, &result.program).passed(),
            "{id}: synthesized program fails spec {:?}\n{}",
            s.name,
            result.program
        );
    }
    (env2, result.program)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "covered per-benchmark below; heavy in debug"
)]
fn fast_benchmarks_synthesize_and_revalidate() {
    for id in FAST {
        let (_, program) = synthesize(id);
        assert!(
            rbsyn::lang::metrics::program_size(&program) > 0,
            "{id} produced an empty program"
        );
    }
}

#[test]
fn s1_is_the_identity() {
    let (_, p) = synthesize("S1");
    assert_eq!(p.body.compact(), "arg0");
}

#[test]
fn s3_is_a_query_chain() {
    let (_, p) = synthesize("S3");
    let s = p.body.compact();
    assert!(s.contains("User."), "got {s}");
    assert!(s.ends_with(".name"), "got {s}");
}

#[test]
fn s5_branches_on_existence() {
    let (_, p) = synthesize("S5");
    assert_eq!(rbsyn::lang::metrics::program_paths(&p), 2, "\n{p}");
}

#[test]
fn a7_flips_the_state_column() {
    let (_, p) = synthesize("A7");
    let s = p.body.compact();
    assert!(s.contains("state"), "got {s}");
    assert!(s.contains("\"closed\""), "got {s}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy in debug profile")]
fn a11_decrements_through_arithmetic() {
    let (_, p) = synthesize("A11");
    let s = p.body.compact();
    assert!(s.contains("count"), "got {s}");
}

#[test]
fn every_benchmark_builds_a_coherent_environment() {
    for b in all_benchmarks() {
        let (env, problem) = (b.build)();
        problem
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", b.id));
        // The constant set must be installable.
        let opts = (b.options)();
        let synth = Synthesizer::new(env, problem, opts);
        assert!(
            synth.env().table.search_visible_count() > 0,
            "{}: empty library",
            b.id
        );
    }
}
