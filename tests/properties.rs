//! Property-based tests over the core data structures and invariants:
//! subtyping is a preorder with `Nil` bottom / `Obj` top, effect
//! subsumption is a preorder compatible with union, the SAT solver agrees
//! with truth tables, and metrics/printing behave structurally.

use proptest::prelude::*;
use rbsyn::lang::builder::*;
use rbsyn::lang::metrics::{node_count, path_count};
use rbsyn::lang::{Effect, EffectSet, Expr, Symbol, Ty};
use rbsyn::sat::{is_satisfiable, Formula};
use rbsyn::ty::{effect_subsumed, is_subtype, ClassHierarchy};

fn hierarchy() -> (ClassHierarchy, Vec<rbsyn::lang::ClassId>) {
    let mut h = ClassHierarchy::new();
    let base = h.define("Base", None);
    let mid = h.define("Mid", Some(base));
    let leaf = h.define("Leaf", Some(mid));
    let other = h.define("Other", None);
    (h, vec![base, mid, leaf, other])
}

fn arb_ty() -> impl Strategy<Value = Ty> {
    let leaf = prop_oneof![
        Just(Ty::Nil),
        Just(Ty::Bool),
        Just(Ty::Int),
        Just(Ty::Str),
        Just(Ty::Sym),
        Just(Ty::Obj),
        (0usize..4).prop_map(|i| {
            let (_, cs) = hierarchy();
            Ty::Instance(cs[i])
        }),
        (0usize..4).prop_map(|i| {
            let (_, cs) = hierarchy();
            Ty::SingletonClass(cs[i])
        }),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| Ty::Array(Box::new(t))),
            prop::collection::vec(inner, 1..3).prop_map(Ty::union),
        ]
    })
}

fn arb_effect() -> impl Strategy<Value = EffectSet> {
    let atom = prop_oneof![
        Just(Effect::Star),
        (0usize..4, 0u8..3).prop_map(|(i, r)| {
            let (_, cs) = hierarchy();
            Effect::Region(cs[i], Symbol::intern(&format!("r{r}")))
        }),
        (0usize..4).prop_map(|i| {
            let (_, cs) = hierarchy();
            Effect::ClassStar(cs[i])
        }),
    ];
    prop::collection::vec(atom, 0..4).prop_map(EffectSet::from_atoms)
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (0u32..4).prop_map(Formula::Var),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::or(a, b)),
        ]
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(nil()),
        Just(true_()),
        any::<i64>().prop_map(int),
        "[a-z]{1,6}".prop_map(|s| var(&s)),
        "[a-z]{1,6}".prop_map(|s| str_(&s)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| call(a, "m", [b])),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| if_(c, t, e)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| let_("t0", a, b)),
            prop::collection::vec(inner.clone(), 1..3).prop_map(seq),
            inner.clone().prop_map(not),
            (inner.clone(), inner).prop_map(|(a, b)| or(a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn subtyping_is_reflexive(t in arb_ty()) {
        let (h, _) = hierarchy();
        prop_assert!(is_subtype(&h, &t, &t));
    }

    #[test]
    fn nil_bottom_obj_top(t in arb_ty()) {
        let (h, _) = hierarchy();
        prop_assert!(is_subtype(&h, &Ty::Nil, &t));
        prop_assert!(is_subtype(&h, &t, &Ty::Obj));
    }

    #[test]
    fn subtyping_is_transitive(a in arb_ty(), b in arb_ty(), c in arb_ty()) {
        let (h, _) = hierarchy();
        if is_subtype(&h, &a, &b) && is_subtype(&h, &b, &c) {
            prop_assert!(is_subtype(&h, &a, &c), "{a} ≤ {b} ≤ {c}");
        }
    }

    #[test]
    fn union_is_an_upper_bound(a in arb_ty(), b in arb_ty()) {
        let (h, _) = hierarchy();
        let u = Ty::union(vec![a.clone(), b.clone()]);
        prop_assert!(is_subtype(&h, &a, &u));
        prop_assert!(is_subtype(&h, &b, &u));
    }

    #[test]
    fn effect_subsumption_is_reflexive_and_bounded(e in arb_effect()) {
        let (h, _) = hierarchy();
        prop_assert!(effect_subsumed(&h, &e, &e));
        prop_assert!(effect_subsumed(&h, &EffectSet::pure_(), &e));
        prop_assert!(effect_subsumed(&h, &e, &EffectSet::star()));
    }

    #[test]
    fn effect_union_is_an_upper_bound(a in arb_effect(), b in arb_effect()) {
        let (h, _) = hierarchy();
        let u = a.union(&b);
        prop_assert!(effect_subsumed(&h, &a, &u));
        prop_assert!(effect_subsumed(&h, &b, &u));
    }

    #[test]
    fn effect_subsumption_is_transitive(a in arb_effect(), b in arb_effect(), c in arb_effect()) {
        let (h, _) = hierarchy();
        if effect_subsumed(&h, &a, &b) && effect_subsumed(&h, &b, &c) {
            prop_assert!(effect_subsumed(&h, &a, &c));
        }
    }

    #[test]
    fn precision_coarsening_preserves_subsumption(e in arb_effect()) {
        // If a method's write effect subsumes a read at precise labels, it
        // still does at class labels and purity labels (coarsening is
        // monotone) — this is why §5.4's ablation remains complete.
        let (h, _) = hierarchy();
        let class = e.coarsen_to_class();
        let purity = e.coarsen_to_purity();
        prop_assert!(effect_subsumed(&h, &e, &class));
        prop_assert!(effect_subsumed(&h, &class, &purity));
    }

    #[test]
    fn sat_agrees_with_truth_tables(f in arb_formula()) {
        let n = f.num_vars().max(1);
        let mut brute = false;
        for bits in 0..(1u32 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            if f.eval(&assignment) {
                brute = true;
                break;
            }
        }
        prop_assert_eq!(is_satisfiable(&f), brute, "formula {}", f);
    }

    #[test]
    fn metrics_are_positive_and_stable(e in arb_expr()) {
        prop_assert!(node_count(&e) >= 1);
        prop_assert!(path_count(&e) >= 1);
        // Rendering is deterministic.
        prop_assert_eq!(e.compact(), e.clone().compact());
    }

    #[test]
    fn simplify_is_idempotent_and_preserves_evaluability(e in arb_expr()) {
        let s1 = rbsyn::core::expand::simplify(e.clone());
        let s2 = rbsyn::core::expand::simplify(s1.clone());
        prop_assert_eq!(&s1, &s2);
        prop_assert_eq!(e.has_holes(), s1.has_holes());
    }
}
