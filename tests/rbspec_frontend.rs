//! End-to-end frontend tests at the facade level: a brand-new scenario
//! (not in the 19-benchmark suite) is posed by a committed `.rbspec` file
//! and solved with no Rust describing the problem — the acceptance
//! criterion for the textual frontend.

use rbsyn::core::{Options, Synthesizer};
use rbsyn::front;
use rbsyn::interp::run_spec;
use std::path::Path;
use std::time::Duration;

fn example(name: &str) -> front::LoadedSpec {
    let path = format!("{}/examples/{name}", env!("CARGO_MANIFEST_DIR"));
    front::load_file(Path::new(&path)).unwrap_or_else(|e| panic!("{name} must load:\n{e}"))
}

#[test]
fn brand_new_scenario_solves_from_file_alone() {
    let spec = example("library_checkout.rbspec");
    assert_eq!(spec.lowered.problem.name, "checkout");
    // Not a suite benchmark: no Table 1 id, and an id unknown to the
    // registry.
    assert!(spec.lowered.id.is_none());
    assert!(rbsyn::suite::benchmark(&spec.id()).is_none());

    let (env, problem) = spec.build();
    let opts = Options {
        timeout: Some(Duration::from_secs(120)),
        ..spec.lowered.options.clone()
    };
    let out = Synthesizer::new(env, problem, opts)
        .run()
        .expect("the library scenario must synthesize");

    // Revalidate against a fresh environment: the program must pass every
    // spec of the file it came from.
    let (env2, problem2) = spec.build();
    for s in &problem2.specs {
        assert!(
            run_spec(&env2, s, &out.program).passed(),
            "spec {:?} rejects the synthesized program:\n{}",
            s.name,
            out.program
        );
    }
}

#[test]
fn annotated_method_defs_are_visible_with_their_effects() {
    use rbsyn::lang::{Effect, Symbol};
    use rbsyn::ty::MethodKind;

    let spec = example("library_checkout.rbspec");
    let env = &spec.lowered.env;
    let book = env.table.hierarchy.find("Book").expect("Book is declared");
    let (mref, _) = env
        .table
        .lookup(book, MethodKind::Singleton, Symbol::intern("available?"))
        .expect("the def is registered");
    let eff = env.table.effect_of(mref, book);
    assert!(
        eff.read
            .atoms()
            .contains(&Effect::Region(book, Symbol::intern("checked_out"))),
        "declared read effect survives lowering: {eff}"
    );
    assert!(eff.write.is_pure(), "no write annotation was declared");
}

#[test]
fn fig1_blog_example_loads_and_matches_the_overview_shape() {
    let spec = example("blog.rbspec");
    let p = &spec.lowered.problem;
    assert_eq!(p.name, "update_post");
    assert_eq!(p.specs.len(), 3);
    assert_eq!(p.params.len(), 3);
    // The update-hash parameter kept its optional finite-hash keys.
    let hash_ty = format!("{}", p.params[2].1);
    assert_eq!(hash_ty, "{author: ?Str, title: ?Str, slug: ?Str}");
}
