//! Integration tests for the paper's two ablations: guidance modes (§5.3)
//! and effect-annotation precision (§5.4).
//!
//! Absolute times are machine-dependent, so these tests compare *search
//! effort* (candidates tested), which is deterministic.

use rbsyn::core::{Guidance, Options, Synthesizer};
use rbsyn::prelude::EffectPrecision;
use rbsyn::suite::benchmark;
use std::time::Duration;

fn effort(id: &str, guidance: Guidance, precision: EffectPrecision) -> Option<u64> {
    let b = benchmark(id).expect("benchmark exists");
    let (env, problem) = (b.build)();
    let opts = Options {
        guidance,
        precision,
        timeout: Some(Duration::from_secs(60)),
        ..(b.options)()
    };
    Synthesizer::new(env, problem, opts)
        .run()
        .ok()
        .map(|r| r.stats.search.tested)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis ablations are release-profile tests"
)]
fn type_and_effect_guidance_beats_type_only_on_effectful_benchmarks() {
    // A7 needs a database write; with effect guidance the writer is found
    // from the failing assertion's read effect, without it the wrap hole
    // admits every impure method.
    let te = effort("A7", Guidance::both(), EffectPrecision::Precise).expect("TE solves A7");
    // A `None` ablation result (timeout) is the paper's own observed outcome.
    if let Some(t_only) = effort("A7", Guidance::types_only(), EffectPrecision::Precise) {
        assert!(
            te < t_only,
            "TE tested {te} candidates, T-only {t_only}; effect guidance must help"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis ablations are release-profile tests"
)]
fn naive_enumeration_is_strictly_worse_than_te() {
    let te = effort("S4", Guidance::both(), EffectPrecision::Precise).expect("TE solves S4");
    if let Some(naive) = effort("S4", Guidance::neither(), EffectPrecision::Precise) {
        assert!(te <= naive, "TE {te} vs naive {naive}");
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis ablations are release-profile tests"
)]
fn coarser_effects_cost_more_search_effort() {
    let precise =
        effort("A7", Guidance::both(), EffectPrecision::Precise).expect("precise solves A7");
    let class = effort("A7", Guidance::both(), EffectPrecision::Class);
    let purity = effort("A7", Guidance::both(), EffectPrecision::Purity);
    if let Some(class) = class {
        assert!(
            precise <= class,
            "precise={precise} class={class}: region labels must not hurt"
        );
        if let Some(purity) = purity {
            assert!(
                class <= purity,
                "class={class} purity={purity}: purity labels admit the most writers"
            );
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis ablations are release-profile tests"
)]
fn correctness_is_independent_of_precision() {
    // §5.4: "effect precision does not affect the correctness of the
    // synthesized program, since correctness is ensured by the specs."
    for p in EffectPrecision::all() {
        let b = benchmark("A10").expect("A10 exists");
        let (env, problem) = (b.build)();
        let specs = problem.specs.clone();
        let opts = Options {
            precision: p,
            timeout: Some(Duration::from_secs(60)),
            ..(b.options)()
        };
        if let Ok(r) = Synthesizer::new(env, problem, opts).run() {
            let (env2, _) = (b.build)();
            for s in &specs {
                assert!(
                    rbsyn::interp::run_spec(&env2, s, &r.program).passed(),
                    "precision {p:?} produced an incorrect program"
                );
            }
        }
    }
}
